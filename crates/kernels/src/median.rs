//! The median benchmark: sorting-based median of an array of values.
//!
//! Control/compare heavy with very few multiplications — the kernel the
//! paper uses for its detailed frequency/voltage/noise sweeps (Figs. 1, 5
//! and 7).

use crate::data::random_values;
use crate::Benchmark;
use sfi_cpu::Memory;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Program, Reg};
use std::ops::Range;

/// Median of `n` values via in-place bubble sort, as a runnable benchmark.
#[derive(Debug, Clone)]
pub struct MedianBenchmark {
    values: Vec<u32>,
    program: Program,
    fi_window: Range<u32>,
}

impl MedianBenchmark {
    /// Byte address of the input array.
    const ARRAY_BASE: u32 = 0;

    /// Creates the benchmark for `n` values (the paper uses 129) with a
    /// seeded random workload.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `n` is even (an odd count keeps the median a
    /// single array element).
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(
            n >= 3 && n % 2 == 1,
            "median size must be an odd number >= 3, got {n}"
        );
        let values = random_values(n, 1 << 16, seed);
        let (program, fi_window) = Self::build_program(n);
        MedianBenchmark {
            values,
            program,
            fi_window,
        }
    }

    fn output_address(&self) -> u32 {
        Self::ARRAY_BASE + 4 * self.values.len() as u32
    }

    /// The golden (fault-free) median of the input values.
    pub fn golden_median(&self) -> u32 {
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    fn build_program(n: usize) -> (Program, Range<u32>) {
        let mut p = ProgramBuilder::new();
        let (base, count, i, limit, j, off, ptr, a, b, tmp) = (
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
            Reg(8),
            Reg(9),
            Reg(10),
        );
        // Prologue (outside the FI window): constants.
        p.push(Instruction::Addi {
            rd: base,
            ra: Reg(0),
            imm: Self::ARRAY_BASE as i16,
        });
        p.push(Instruction::Addi {
            rd: count,
            ra: Reg(0),
            imm: n as i16,
        });
        let kernel_start = p.here();

        // Bubble sort.
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let outer = p.label();
        p.push(Instruction::Sub {
            rd: limit,
            ra: count,
            rb: i,
        });
        p.push(Instruction::Addi {
            rd: limit,
            ra: limit,
            imm: -1,
        });
        p.push(Instruction::Addi {
            rd: j,
            ra: Reg(0),
            imm: 0,
        });
        let inner = p.label();
        p.push(Instruction::Slli {
            rd: off,
            ra: j,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: base,
            rb: off,
        });
        p.push(Instruction::Lwz {
            rd: a,
            ra: ptr,
            offset: 0,
        });
        p.push(Instruction::Lwz {
            rd: b,
            ra: ptr,
            offset: 4,
        });
        p.push(Instruction::Sfgtu { ra: a, rb: b });
        let no_swap = p.forward_label();
        p.branch_if_not_flag(no_swap);
        p.push(Instruction::Sw {
            ra: ptr,
            rb: b,
            offset: 0,
        });
        p.push(Instruction::Sw {
            ra: ptr,
            rb: a,
            offset: 4,
        });
        p.bind(no_swap);
        p.push(Instruction::Addi {
            rd: j,
            ra: j,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: j, rb: limit });
        p.branch_if_flag(inner);
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Addi {
            rd: tmp,
            ra: count,
            imm: -1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: tmp });
        p.branch_if_flag(outer);

        // Store the middle element to the output word.
        let middle_offset = ((n / 2) * 4) as i16;
        p.push(Instruction::Lwz {
            rd: a,
            ra: base,
            offset: middle_offset,
        });
        p.push(Instruction::Sw {
            ra: base,
            rb: a,
            offset: (n * 4) as i16,
        });
        let kernel_end = p.here();
        (p.build(), kernel_start..kernel_end)
    }
}

impl Benchmark for MedianBenchmark {
    fn name(&self) -> &'static str {
        "median"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        self.values.len() + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        memory
            .write_block(Self::ARRAY_BASE, &self.values)
            .expect("data memory large enough");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let golden = self.golden_median();
        let got = memory.load_word(self.output_address()).ok()?;
        let diff = (got as f64 - golden as f64).abs();
        Some((diff / golden.max(1) as f64).min(1.0))
    }

    fn error_metric(&self) -> &'static str {
        "relative difference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_cpu::{Core, RunConfig};

    fn run(bench: &MedianBenchmark) -> Core {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "outcome: {outcome:?}");
        core
    }

    #[test]
    fn fault_free_run_is_correct() {
        for n in [3, 21, 129] {
            let bench = MedianBenchmark::new(n, 42);
            let core = run(&bench);
            assert_eq!(bench.output_error(core.memory()), 0.0, "n = {n}");
            assert!(bench.is_correct(core.memory()));
        }
    }

    #[test]
    fn kernel_is_control_heavy() {
        let bench = MedianBenchmark::new(129, 1);
        let core = run(&bench);
        let stats = core.stats();
        assert!(stats.multiplications == 0, "median has no multiplications");
        assert!(
            stats.control_fraction() > 0.15,
            "median is control oriented"
        );
        assert!(
            stats.cycles > 100_000,
            "129-value median takes > 100 kCycles"
        );
    }

    #[test]
    fn corrupted_output_is_detected() {
        let bench = MedianBenchmark::new(21, 7);
        let mut core = run(&bench);
        let addr = bench.output_address();
        let golden = core.memory().load_word(addr).unwrap();
        core.memory_mut().store_word(addr, golden ^ 0x8000).unwrap();
        assert!(bench.output_error(core.memory()) > 0.0);
        assert!(!bench.is_correct(core.memory()));
        assert_eq!(bench.error_metric(), "relative difference");
    }

    #[test]
    fn window_and_name() {
        let bench = MedianBenchmark::new(9, 0);
        assert_eq!(bench.name(), "median");
        assert!(bench.fi_window().start >= 2);
        assert!((bench.fi_window().end as usize) <= bench.program().len());
    }

    #[test]
    #[should_panic(expected = "odd number")]
    fn even_size_panics() {
        MedianBenchmark::new(10, 0);
    }
}
