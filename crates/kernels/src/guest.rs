//! User-submitted guest programs as benchmarks.
//!
//! Every other kernel in this crate is a hand-built Rust recipe; a
//! [`GuestProgramBenchmark`] instead wraps an arbitrary [`Program`]
//! (typically decoded from instruction-memory words submitted over the
//! wire) together with explicit input data and an output region. The
//! golden reference is computed by one bounded fault-free run at
//! construction time, so the per-trial hot path stays identical to the
//! built-in kernels.
//!
//! Construction deliberately does **not** verify the program statically —
//! that is `sfi-verify`'s job, and the serve submission gate runs it
//! *before* building the benchmark so hostile programs cannot even burn
//! the golden-run watchdog budget.

use crate::Benchmark;
use sfi_cpu::{Core, Memory, RunConfig, RunOutcome};
use sfi_isa::Program;
use std::fmt;
use std::ops::Range;

/// Watchdog budget for the construction-time golden run, in cycles.
///
/// Deliberately below the trial default (10 M) so a pathological but
/// terminating program costs bounded time at submission.
pub const GOLDEN_RUN_MAX_CYCLES: u64 = 4_000_000;

/// Why a guest program could not be turned into a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub enum GuestProgramError {
    /// The input data does not fit the declared data memory.
    InputTooLarge {
        /// Number of input words supplied.
        input_words: usize,
        /// Declared data-memory size in words.
        dmem_words: usize,
    },
    /// The output region is empty or escapes the declared data memory.
    OutputOutOfRange {
        /// The offending word range.
        output: Range<u32>,
        /// Declared data-memory size in words.
        dmem_words: usize,
    },
    /// The fault-free golden run did not complete normally.
    GoldenRunFailed {
        /// How the run ended instead.
        outcome: RunOutcome,
    },
}

impl fmt::Display for GuestProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestProgramError::InputTooLarge {
                input_words,
                dmem_words,
            } => write!(
                f,
                "input of {input_words} words does not fit the declared data \
                 memory of {dmem_words} words"
            ),
            GuestProgramError::OutputOutOfRange { output, dmem_words } => write!(
                f,
                "output region {}..{} is empty or escapes the declared data \
                 memory of {dmem_words} words",
                output.start, output.end
            ),
            GuestProgramError::GoldenRunFailed { outcome } => write!(
                f,
                "the fault-free golden run did not complete normally: {outcome:?}"
            ),
        }
    }
}

impl std::error::Error for GuestProgramError {}

/// An arbitrary guest [`Program`] packaged as a [`Benchmark`].
///
/// Inputs are written to data-memory words `0..input.len()`; the output
/// error metric is the fraction of mismatched words in the declared
/// output region against the golden reference.
#[derive(Debug, Clone)]
pub struct GuestProgramBenchmark {
    program: Program,
    dmem_words: usize,
    fi_window: Range<u32>,
    input: Vec<u32>,
    output: Range<u32>,
    golden: Vec<u32>,
}

impl GuestProgramBenchmark {
    /// Builds a guest benchmark and computes its golden reference with one
    /// bounded fault-free run.
    ///
    /// `output` is a range of data-memory *word* indices compared against
    /// the golden run; `input` is written to words `0..input.len()` before
    /// every run.
    ///
    /// # Errors
    ///
    /// Returns a [`GuestProgramError`] when the input or output region
    /// does not fit `dmem_words`, or the golden run does not finish within
    /// [`GOLDEN_RUN_MAX_CYCLES`].
    pub fn new(
        program: Program,
        dmem_words: usize,
        fi_window: Range<u32>,
        input: Vec<u32>,
        output: Range<u32>,
    ) -> Result<Self, GuestProgramError> {
        if input.len() > dmem_words {
            return Err(GuestProgramError::InputTooLarge {
                input_words: input.len(),
                dmem_words,
            });
        }
        if output.start >= output.end || output.end as usize > dmem_words {
            return Err(GuestProgramError::OutputOutOfRange { output, dmem_words });
        }

        let mut bench = GuestProgramBenchmark {
            program,
            dmem_words,
            fi_window,
            input,
            output,
            golden: Vec::new(),
        };

        let mut core = Core::new(bench.program.clone(), dmem_words);
        bench.initialize(core.memory_mut());
        let config = RunConfig {
            max_cycles: GOLDEN_RUN_MAX_CYCLES,
            ..RunConfig::default()
        };
        let outcome = core.run(&config);
        if !outcome.finished() {
            return Err(GuestProgramError::GoldenRunFailed { outcome });
        }
        bench.golden = core
            .memory()
            .read_block(bench.output.start * 4, bench.output.len())
            .expect("output region validated against dmem size");
        Ok(bench)
    }

    /// The golden output words computed at construction.
    pub fn golden(&self) -> &[u32] {
        &self.golden
    }

    /// The declared output region (data-memory word indices).
    pub fn output_region(&self) -> Range<u32> {
        self.output.clone()
    }
}

impl Benchmark for GuestProgramBenchmark {
    fn name(&self) -> &'static str {
        "guest_program"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        self.dmem_words
    }

    fn initialize(&self, memory: &mut Memory) {
        memory
            .write_block(0, &self.input)
            .expect("input validated against dmem size");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let got = memory
            .read_block(self.output.start * 4, self.output.len())
            .ok()?;
        let mismatched = got.iter().zip(&self.golden).filter(|(a, b)| a != b).count();
        Some(mismatched as f64 / self.golden.len() as f64)
    }

    fn error_metric(&self) -> &'static str {
        "output-word mismatch fraction"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_isa::{Instruction, ProgramBuilder, Reg};

    /// Stores `value` to data-memory word 0 and exits.
    fn store_program(value: u32) -> Program {
        let mut p = ProgramBuilder::new();
        p.load_immediate(Reg(3), value);
        p.push(Instruction::Sw {
            ra: Reg(0),
            rb: Reg(3),
            offset: 0,
        });
        p.build()
    }

    #[test]
    fn golden_run_and_metric() {
        let bench =
            GuestProgramBenchmark::new(store_program(0xDEAD_BEEF), 4, 0..3, vec![], 0..1).unwrap();
        assert_eq!(bench.golden(), &[0xDEAD_BEEF]);
        assert_eq!(bench.name(), "guest_program");
        assert_eq!(bench.dmem_words(), 4);
        assert_eq!(bench.output_region(), 0..1);

        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        assert!(core.run(&RunConfig::default()).finished());
        assert_eq!(bench.try_output_error(core.memory()), Some(0.0));
        assert!(bench.is_correct(core.memory()));

        // A corrupted output word is a 100% mismatch over a 1-word region.
        core.memory_mut().store_word(0, 1).unwrap();
        assert_eq!(bench.try_output_error(core.memory()), Some(1.0));
    }

    #[test]
    fn inputs_are_loaded_before_the_run() {
        // Program: load word 0, add 1, store to word 1.
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Lwz {
            rd: Reg(3),
            ra: Reg(0),
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: Reg(3),
            ra: Reg(3),
            imm: 1,
        });
        p.push(Instruction::Sw {
            ra: Reg(0),
            rb: Reg(3),
            offset: 4,
        });
        let bench = GuestProgramBenchmark::new(p.build(), 4, 0..3, vec![41], 1..2).unwrap();
        assert_eq!(bench.golden(), &[42]);
    }

    #[test]
    fn oversized_input_is_rejected() {
        let err =
            GuestProgramBenchmark::new(store_program(1), 2, 0..1, vec![0; 3], 0..1).unwrap_err();
        assert!(matches!(err, GuestProgramError::InputTooLarge { .. }));
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn bad_output_region_is_rejected() {
        let err = GuestProgramBenchmark::new(store_program(1), 4, 0..1, vec![], 3..9).unwrap_err();
        assert!(matches!(err, GuestProgramError::OutputOutOfRange { .. }));
        let err = GuestProgramBenchmark::new(store_program(1), 4, 0..1, vec![], 2..2).unwrap_err();
        assert!(matches!(err, GuestProgramError::OutputOutOfRange { .. }));
    }

    #[test]
    fn non_terminating_golden_run_is_rejected() {
        let spin = Program::new(vec![Instruction::J { offset: -1 }]);
        let err = GuestProgramBenchmark::new(spin, 4, 0..1, vec![], 0..1).unwrap_err();
        assert!(matches!(
            err,
            GuestProgramError::GoldenRunFailed {
                outcome: RunOutcome::Watchdog { .. }
            }
        ));
        assert!(err.to_string().contains("golden run"));
    }
}
