//! The CRC32 benchmark: bitwise CRC-32 (IEEE 802.3, reflected) over a
//! word stream.
//!
//! Pure control/shift mix: the kernel is one branch, one shift and one
//! conditional XOR per message bit, with no multiplications at all — the
//! opposite corner of the compute/control plane from matmul and FIR.  A
//! single flipped datapath bit almost always avalanches through the
//! remainder, which makes the exact-match metric the natural choice and
//! connects the suite to the error-detection coding literature.

use crate::data::random_words;
use crate::Benchmark;
use sfi_cpu::Memory;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Program, Reg};
use std::ops::Range;

/// The reflected CRC-32 (IEEE 802.3) polynomial.
pub const POLYNOMIAL: u32 = 0xEDB8_8320;

/// Bitwise CRC-32 of a random word stream.
#[derive(Debug, Clone)]
pub struct Crc32Benchmark {
    words: Vec<u32>,
    program: Program,
    fi_window: Range<u32>,
}

impl Crc32Benchmark {
    /// Byte address of the message words.
    const DATA_BASE: u32 = 0;

    /// Creates the benchmark over `words` random 32-bit message words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not in `1..=1024`.
    pub fn new(words: usize, seed: u64) -> Self {
        assert!(
            (1..=1024).contains(&words),
            "word count must be in 1..=1024, got {words}"
        );
        let words = random_words(words, seed);
        let (program, fi_window) = Self::build_program(words.len());
        Crc32Benchmark {
            words,
            program,
            fi_window,
        }
    }

    fn output_address(&self) -> u32 {
        Self::DATA_BASE + 4 * self.words.len() as u32
    }

    /// The golden (fault-free) CRC-32 of the message, folding 32 message
    /// bits per word exactly like the kernel.
    pub fn golden_crc(&self) -> u32 {
        let mut crc = u32::MAX;
        for &word in &self.words {
            crc ^= word;
            for _ in 0..32 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLYNOMIAL
                } else {
                    crc >> 1
                };
            }
        }
        crc ^ u32::MAX
    }

    fn build_program(words: usize) -> (Program, Range<u32>) {
        let mut p = ProgramBuilder::new();
        let (base, n, crc, i, ptr, w, bit, t) = (
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
            Reg(8),
        );
        let (poly, ones, thirty_two) = (Reg(10), Reg(11), Reg(12));

        // Prologue (outside the FI window): constants.
        p.push(Instruction::Addi {
            rd: base,
            ra: Reg(0),
            imm: Self::DATA_BASE as i16,
        });
        p.push(Instruction::Addi {
            rd: n,
            ra: Reg(0),
            imm: words as i16,
        });
        p.load_immediate(poly, POLYNOMIAL);
        // ones = 0xFFFF_FFFF via the sign-extended immediate.
        p.push(Instruction::Addi {
            rd: ones,
            ra: Reg(0),
            imm: -1,
        });
        p.push(Instruction::Addi {
            rd: thirty_two,
            ra: Reg(0),
            imm: 32,
        });
        p.push(Instruction::Or {
            rd: crc,
            ra: ones,
            rb: Reg(0),
        });
        let kernel_start = p.here();

        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let word_loop = p.label();
        p.push(Instruction::Slli {
            rd: t,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: base,
            rb: t,
        });
        p.push(Instruction::Lwz {
            rd: w,
            ra: ptr,
            offset: 0,
        });
        p.push(Instruction::Xor {
            rd: crc,
            ra: crc,
            rb: w,
        });
        p.push(Instruction::Addi {
            rd: bit,
            ra: Reg(0),
            imm: 0,
        });
        let bit_loop = p.label();
        // Test the LSB before shifting, then conditionally fold the
        // polynomial into the shifted remainder.
        p.push(Instruction::Andi {
            rd: t,
            ra: crc,
            imm: 1,
        });
        p.push(Instruction::Sfne { ra: t, rb: Reg(0) });
        p.push(Instruction::Srli {
            rd: crc,
            ra: crc,
            shamt: 1,
        });
        let no_fold = p.forward_label();
        p.branch_if_not_flag(no_fold);
        p.push(Instruction::Xor {
            rd: crc,
            ra: crc,
            rb: poly,
        });
        p.bind(no_fold);
        p.push(Instruction::Addi {
            rd: bit,
            ra: bit,
            imm: 1,
        });
        p.push(Instruction::Sfltu {
            ra: bit,
            rb: thirty_two,
        });
        p.branch_if_flag(bit_loop);
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n });
        p.branch_if_flag(word_loop);
        // Final inversion and store.
        p.push(Instruction::Xor {
            rd: crc,
            ra: crc,
            rb: ones,
        });
        p.push(Instruction::Sw {
            ra: base,
            rb: crc,
            offset: (4 * words) as i16,
        });
        let kernel_end = p.here();
        (p.build(), kernel_start..kernel_end)
    }
}

impl Benchmark for Crc32Benchmark {
    fn name(&self) -> &'static str {
        "crc32"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        self.words.len() + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        memory
            .write_block(Self::DATA_BASE, &self.words)
            .expect("data memory large enough");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let got = memory.load_word(self.output_address()).ok()?;
        Some(if got == self.golden_crc() { 0.0 } else { 1.0 })
    }

    fn error_metric(&self) -> &'static str {
        "exact match"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_cpu::{Core, RunConfig};

    fn run(bench: &Crc32Benchmark) -> Core {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "outcome: {outcome:?}");
        core
    }

    #[test]
    fn fault_free_run_matches_golden() {
        for words in [1, 16, 128] {
            let bench = Crc32Benchmark::new(words, 4);
            let core = run(&bench);
            assert_eq!(bench.try_output_error(core.memory()), Some(0.0));
            assert!(bench.is_correct(core.memory()));
            assert_eq!(
                core.memory().load_word(bench.output_address()).unwrap(),
                bench.golden_crc()
            );
        }
    }

    #[test]
    fn golden_matches_the_reference_algorithm() {
        // CRC-32("IEEE" word 0x45454549 as a little-endian byte stream)
        // computed with the canonical byte-at-a-time reference.
        let bench = Crc32Benchmark::new(1, 0);
        let bytes = bench.words[0].to_le_bytes();
        let mut crc = u32::MAX;
        for b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLYNOMIAL
                } else {
                    crc >> 1
                };
            }
        }
        assert_eq!(bench.golden_crc(), crc ^ u32::MAX);
    }

    #[test]
    fn kernel_is_pure_control_and_shift() {
        let bench = Crc32Benchmark::new(128, 1);
        let core = run(&bench);
        let stats = core.stats();
        assert_eq!(stats.multiplications, 0, "CRC32 has no multiplications");
        assert!(
            stats.control_fraction() > 0.2,
            "CRC32 is control oriented, got {}",
            stats.control_fraction()
        );
        assert!(stats.cycles > 20_000, "128-word CRC32 takes > 20 kCycles");
    }

    #[test]
    fn any_corruption_scores_total_error() {
        let bench = Crc32Benchmark::new(8, 7);
        let mut core = run(&bench);
        let addr = bench.output_address();
        let golden = core.memory().load_word(addr).unwrap();
        core.memory_mut().store_word(addr, golden ^ 1).unwrap();
        assert_eq!(bench.output_error(core.memory()), 1.0);
        assert!(!bench.is_correct(core.memory()));
        assert_eq!(bench.error_metric(), "exact match");
        assert_eq!(bench.name(), "crc32");
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn oversized_message_panics() {
        Crc32Benchmark::new(100_000, 0);
    }
}
