//! The k-means clustering benchmark.
//!
//! Mixed compute/control: squared-distance computations use
//! multiplications, the assignment and centroid-update steps are loop and
//! branch heavy, and centroid averaging uses software division.

use crate::data::random_points;
use crate::Benchmark;
use sfi_cpu::Memory;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Program, Reg};
use std::ops::Range;

/// Lloyd's k-means over 2-D integer points.
#[derive(Debug, Clone)]
pub struct KMeansBenchmark {
    points: Vec<(u32, u32)>,
    clusters: usize,
    iterations: usize,
    program: Program,
    fi_window: Range<u32>,
}

impl KMeansBenchmark {
    const POINTS_BASE: u32 = 0;

    /// Creates the benchmark with `n` points, `k` clusters and a fixed
    /// number of Lloyd iterations (the paper uses 8 points in 2-D).
    ///
    /// # Panics
    ///
    /// Panics if `n`, `k` or `iterations` is zero, or `k > n`.
    pub fn new(n: usize, k: usize, iterations: usize, seed: u64) -> Self {
        assert!(
            n > 0 && k > 0 && iterations > 0 && k <= n,
            "invalid k-means configuration"
        );
        let points = random_points(n, k, 1 << 8, seed);
        let (program, fi_window) = Self::build_program(n, k, iterations);
        KMeansBenchmark {
            points,
            clusters: k,
            iterations,
            program,
            fi_window,
        }
    }

    fn centroid_base(&self) -> u32 {
        Self::POINTS_BASE + 8 * self.points.len() as u32
    }

    fn assignment_base(&self) -> u32 {
        self.centroid_base() + 8 * self.clusters as u32
    }

    /// The golden (fault-free) final cluster assignment of every point.
    pub fn golden_assignments(&self) -> Vec<u32> {
        let n = self.points.len();
        let k = self.clusters;
        let mut centroids: Vec<(u32, u32)> = (0..k).map(|c| self.points[c]).collect();
        let mut assignments = vec![0u32; n];
        for _ in 0..self.iterations {
            // Assignment step.
            for (i, &(px, py)) in self.points.iter().enumerate() {
                let mut best = u32::MAX;
                let mut best_c = 0u32;
                for (c, &(cx, cy)) in centroids.iter().enumerate() {
                    let dx = px.wrapping_sub(cx);
                    let dy = py.wrapping_sub(cy);
                    let dist = dx.wrapping_mul(dx).wrapping_add(dy.wrapping_mul(dy));
                    if dist < best {
                        best = dist;
                        best_c = c as u32;
                    }
                }
                assignments[i] = best_c;
            }
            // Update step (integer mean, floor division).
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<&(u32, u32)> = self
                    .points
                    .iter()
                    .zip(&assignments)
                    .filter(|(_, &a)| a == c as u32)
                    .map(|(p, _)| p)
                    .collect();
                if !members.is_empty() {
                    let sx: u32 = members.iter().map(|p| p.0).sum();
                    let sy: u32 = members.iter().map(|p| p.1).sum();
                    *centroid = (sx / members.len() as u32, sy / members.len() as u32);
                }
            }
        }
        assignments
    }

    fn build_program(n: usize, k: usize, iterations: usize) -> (Program, Range<u32>) {
        let mut p = ProgramBuilder::new();
        let points_base = Reg(1);
        let n_reg = Reg(2);
        let k_reg = Reg(3);
        let centroid_base = Reg(4);
        let assign_base = Reg(5);
        let iter = Reg(6);
        let i = Reg(7);
        let pt_ptr = Reg(8);
        let px = Reg(9);
        let py = Reg(10);
        let best = Reg(11);
        let best_c = Reg(12);
        let c = Reg(13);
        let ptr = Reg(14);
        let cx = Reg(15);
        let cy = Reg(16);
        let sum_x = Reg(17);
        let sum_y = Reg(18);
        let count = Reg(19);
        let qx = Reg(20);
        let qy = Reg(21);
        let iter_bound = Reg(22);
        let t1 = Reg(23);
        let t2 = Reg(24);

        // Prologue: base addresses, sizes and initial centroids (= the
        // first k points).
        p.push(Instruction::Addi {
            rd: points_base,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: n_reg,
            ra: Reg(0),
            imm: n as i16,
        });
        p.push(Instruction::Addi {
            rd: k_reg,
            ra: Reg(0),
            imm: k as i16,
        });
        p.push(Instruction::Addi {
            rd: centroid_base,
            ra: Reg(0),
            imm: (8 * n) as i16,
        });
        p.push(Instruction::Addi {
            rd: assign_base,
            ra: Reg(0),
            imm: (8 * n + 8 * k) as i16,
        });
        p.push(Instruction::Addi {
            rd: iter_bound,
            ra: Reg(0),
            imm: iterations as i16,
        });
        for cluster in 0..k {
            p.push(Instruction::Lwz {
                rd: t1,
                ra: points_base,
                offset: (8 * cluster) as i16,
            });
            p.push(Instruction::Sw {
                ra: centroid_base,
                rb: t1,
                offset: (8 * cluster) as i16,
            });
            p.push(Instruction::Lwz {
                rd: t1,
                ra: points_base,
                offset: (8 * cluster + 4) as i16,
            });
            p.push(Instruction::Sw {
                ra: centroid_base,
                rb: t1,
                offset: (8 * cluster + 4) as i16,
            });
        }
        p.push(Instruction::Addi {
            rd: iter,
            ra: Reg(0),
            imm: 0,
        });
        let kernel_start = p.here();

        let iter_loop = p.label();
        // ---------------- assignment step ----------------
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let assign_loop = p.label();
        p.push(Instruction::Slli {
            rd: pt_ptr,
            ra: i,
            shamt: 3,
        });
        p.push(Instruction::Add {
            rd: pt_ptr,
            ra: pt_ptr,
            rb: points_base,
        });
        p.push(Instruction::Lwz {
            rd: px,
            ra: pt_ptr,
            offset: 0,
        });
        p.push(Instruction::Lwz {
            rd: py,
            ra: pt_ptr,
            offset: 4,
        });
        p.load_immediate(best, u32::MAX);
        p.push(Instruction::Addi {
            rd: best_c,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: c,
            ra: Reg(0),
            imm: 0,
        });
        let dist_loop = p.label();
        p.push(Instruction::Slli {
            rd: ptr,
            ra: c,
            shamt: 3,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: ptr,
            rb: centroid_base,
        });
        p.push(Instruction::Lwz {
            rd: cx,
            ra: ptr,
            offset: 0,
        });
        p.push(Instruction::Lwz {
            rd: cy,
            ra: ptr,
            offset: 4,
        });
        p.push(Instruction::Sub {
            rd: t1,
            ra: px,
            rb: cx,
        });
        p.push(Instruction::Mul {
            rd: t1,
            ra: t1,
            rb: t1,
        });
        p.push(Instruction::Sub {
            rd: t2,
            ra: py,
            rb: cy,
        });
        p.push(Instruction::Mul {
            rd: t2,
            ra: t2,
            rb: t2,
        });
        p.push(Instruction::Add {
            rd: t1,
            ra: t1,
            rb: t2,
        });
        p.push(Instruction::Sfltu { ra: t1, rb: best });
        let not_better = p.forward_label();
        p.branch_if_not_flag(not_better);
        p.push(Instruction::Or {
            rd: best,
            ra: t1,
            rb: Reg(0),
        });
        p.push(Instruction::Or {
            rd: best_c,
            ra: c,
            rb: Reg(0),
        });
        p.bind(not_better);
        p.push(Instruction::Addi {
            rd: c,
            ra: c,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: c, rb: k_reg });
        p.branch_if_flag(dist_loop);
        p.push(Instruction::Slli {
            rd: ptr,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: ptr,
            rb: assign_base,
        });
        p.push(Instruction::Sw {
            ra: ptr,
            rb: best_c,
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n_reg });
        p.branch_if_flag(assign_loop);

        // ---------------- update step ----------------
        p.push(Instruction::Addi {
            rd: c,
            ra: Reg(0),
            imm: 0,
        });
        let update_loop = p.label();
        p.push(Instruction::Addi {
            rd: sum_x,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: sum_y,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: count,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let sum_loop = p.label();
        p.push(Instruction::Slli {
            rd: ptr,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: ptr,
            rb: assign_base,
        });
        p.push(Instruction::Lwz {
            rd: t1,
            ra: ptr,
            offset: 0,
        });
        p.push(Instruction::Sfeq { ra: t1, rb: c });
        let skip_point = p.forward_label();
        p.branch_if_not_flag(skip_point);
        p.push(Instruction::Slli {
            rd: pt_ptr,
            ra: i,
            shamt: 3,
        });
        p.push(Instruction::Add {
            rd: pt_ptr,
            ra: pt_ptr,
            rb: points_base,
        });
        p.push(Instruction::Lwz {
            rd: px,
            ra: pt_ptr,
            offset: 0,
        });
        p.push(Instruction::Lwz {
            rd: py,
            ra: pt_ptr,
            offset: 4,
        });
        p.push(Instruction::Add {
            rd: sum_x,
            ra: sum_x,
            rb: px,
        });
        p.push(Instruction::Add {
            rd: sum_y,
            ra: sum_y,
            rb: py,
        });
        p.push(Instruction::Addi {
            rd: count,
            ra: count,
            imm: 1,
        });
        p.bind(skip_point);
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n_reg });
        p.branch_if_flag(sum_loop);
        // Skip the centroid update for empty clusters.
        p.push(Instruction::Sfeq {
            ra: count,
            rb: Reg(0),
        });
        let skip_update = p.forward_label();
        p.branch_if_flag(skip_update);
        // Software division: qx = sum_x / count, qy = sum_y / count.
        p.push(Instruction::Addi {
            rd: qx,
            ra: Reg(0),
            imm: 0,
        });
        let divx_loop = p.label();
        p.push(Instruction::Sfgeu {
            ra: sum_x,
            rb: count,
        });
        let divx_done = p.forward_label();
        p.branch_if_not_flag(divx_done);
        p.push(Instruction::Sub {
            rd: sum_x,
            ra: sum_x,
            rb: count,
        });
        p.push(Instruction::Addi {
            rd: qx,
            ra: qx,
            imm: 1,
        });
        p.jump(divx_loop);
        p.bind(divx_done);
        p.push(Instruction::Addi {
            rd: qy,
            ra: Reg(0),
            imm: 0,
        });
        let divy_loop = p.label();
        p.push(Instruction::Sfgeu {
            ra: sum_y,
            rb: count,
        });
        let divy_done = p.forward_label();
        p.branch_if_not_flag(divy_done);
        p.push(Instruction::Sub {
            rd: sum_y,
            ra: sum_y,
            rb: count,
        });
        p.push(Instruction::Addi {
            rd: qy,
            ra: qy,
            imm: 1,
        });
        p.jump(divy_loop);
        p.bind(divy_done);
        p.push(Instruction::Slli {
            rd: ptr,
            ra: c,
            shamt: 3,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: ptr,
            rb: centroid_base,
        });
        p.push(Instruction::Sw {
            ra: ptr,
            rb: qx,
            offset: 0,
        });
        p.push(Instruction::Sw {
            ra: ptr,
            rb: qy,
            offset: 4,
        });
        p.bind(skip_update);
        p.push(Instruction::Addi {
            rd: c,
            ra: c,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: c, rb: k_reg });
        p.branch_if_flag(update_loop);

        // ---------------- iteration control ----------------
        p.push(Instruction::Addi {
            rd: iter,
            ra: iter,
            imm: 1,
        });
        p.push(Instruction::Sfltu {
            ra: iter,
            rb: iter_bound,
        });
        p.branch_if_flag(iter_loop);
        let kernel_end = p.here();
        (p.build(), kernel_start..kernel_end)
    }
}

impl Benchmark for KMeansBenchmark {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        2 * self.points.len() + 2 * self.clusters + self.points.len() + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        let words: Vec<u32> = self.points.iter().flat_map(|&(x, y)| [x, y]).collect();
        memory
            .write_block(Self::POINTS_BASE, &words)
            .expect("data memory large enough");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let golden = self.golden_assignments();
        let got = memory
            .read_block(self.assignment_base(), self.points.len())
            .ok()?;
        let mismatches = golden.iter().zip(&got).filter(|(g, o)| g != o).count();
        Some(mismatches as f64 / self.points.len() as f64)
    }

    fn error_metric(&self) -> &'static str {
        "cluster membership mismatch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_cpu::{Core, RunConfig};

    fn run(bench: &KMeansBenchmark) -> Core {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "outcome: {outcome:?}");
        core
    }

    #[test]
    fn fault_free_run_matches_golden() {
        let bench = KMeansBenchmark::new(8, 2, 12, 9);
        let core = run(&bench);
        assert_eq!(bench.output_error(core.memory()), 0.0);
        let assignments = core
            .memory()
            .read_block(bench.assignment_base(), 8)
            .unwrap();
        assert_eq!(assignments, bench.golden_assignments());
        // The clustered workload must actually use both clusters.
        assert!(assignments.contains(&0));
        assert!(assignments.contains(&1));
    }

    #[test]
    fn mixed_compute_and_control() {
        let bench = KMeansBenchmark::new(8, 2, 12, 2);
        let core = run(&bench);
        let stats = core.stats();
        assert!(
            stats.multiplications > 0,
            "distance computation uses multiplications"
        );
        assert!(
            stats.control_fraction() > 0.1,
            "k-means has significant control flow"
        );
        // Far fewer multiplications than matmul relative to cycle count
        // (the paper explains k-means' lower FI rate this way).
        assert!((stats.multiplications as f64) < 0.05 * stats.cycles as f64);
    }

    #[test]
    fn corrupted_assignment_detected() {
        let bench = KMeansBenchmark::new(8, 2, 4, 1);
        let mut core = run(&bench);
        let base = bench.assignment_base();
        let golden = core.memory().load_word(base).unwrap();
        core.memory_mut().store_word(base, golden ^ 1).unwrap();
        let err = bench.output_error(core.memory());
        assert!((err - 1.0 / 8.0).abs() < 1e-12);
        assert_eq!(bench.error_metric(), "cluster membership mismatch");
        assert_eq!(bench.name(), "kmeans");
    }

    #[test]
    #[should_panic(expected = "invalid k-means configuration")]
    fn invalid_configuration_panics() {
        KMeansBenchmark::new(4, 8, 1, 0);
    }
}
