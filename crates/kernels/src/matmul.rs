//! The matrix-multiplication benchmark (8- and 16-bit element variants).
//!
//! Compute heavy with one multiplication per inner-loop iteration — the
//! kernel dominated by the most timing-critical instruction.

use crate::data::random_values;
use crate::Benchmark;
use sfi_cpu::Memory;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Program, Reg};
use std::ops::Range;

/// Element width of the input matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementWidth {
    /// 8-bit unsigned elements.
    Bits8,
    /// 16-bit unsigned elements.
    Bits16,
}

impl ElementWidth {
    fn bound(self) -> u32 {
        match self {
            ElementWidth::Bits8 => 1 << 8,
            ElementWidth::Bits16 => 1 << 16,
        }
    }
}

/// `n × n` integer matrix multiplication `C = A × B`.
#[derive(Debug, Clone)]
pub struct MatrixMultiplyBenchmark {
    n: usize,
    width: ElementWidth,
    a: Vec<u32>,
    b: Vec<u32>,
    program: Program,
    fi_window: Range<u32>,
}

impl MatrixMultiplyBenchmark {
    /// Creates the benchmark for `n × n` matrices of the given element
    /// width (the paper uses 16×16 with 8- and 16-bit values).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or larger than 64.
    pub fn new(n: usize, width: ElementWidth, seed: u64) -> Self {
        assert!(n > 0 && n <= 64, "matrix size must be in 1..=64, got {n}");
        let a = random_values(n * n, width.bound(), seed);
        let b = random_values(n * n, width.bound(), seed.wrapping_add(1));
        let (program, fi_window) = Self::build_program(n);
        MatrixMultiplyBenchmark {
            n,
            width,
            a,
            b,
            program,
            fi_window,
        }
    }

    fn a_base(&self) -> u32 {
        0
    }

    fn b_base(&self) -> u32 {
        (4 * self.n * self.n) as u32
    }

    fn c_base(&self) -> u32 {
        (8 * self.n * self.n) as u32
    }

    /// The golden (fault-free) product matrix, row major, with the same
    /// wrapping 32-bit arithmetic as the hardware.
    pub fn golden_product(&self) -> Vec<u32> {
        let n = self.n;
        let mut c = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0u32;
                for k in 0..n {
                    acc = acc.wrapping_add(self.a[i * n + k].wrapping_mul(self.b[k * n + j]));
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn build_program(n: usize) -> (Program, Range<u32>) {
        let mut p = ProgramBuilder::new();
        let (a_base, b_base, c_base, nn, i, j, acc, k) = (
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
            Reg(8),
        );
        let (idx, ptr, va, vb, prod) = (Reg(9), Reg(10), Reg(11), Reg(12), Reg(13));

        // Prologue: base addresses and dimension.
        p.push(Instruction::Addi {
            rd: a_base,
            ra: Reg(0),
            imm: 0,
        });
        p.load_immediate(b_base, (4 * n * n) as u32);
        p.load_immediate(c_base, (8 * n * n) as u32);
        p.push(Instruction::Addi {
            rd: nn,
            ra: Reg(0),
            imm: n as i16,
        });
        let kernel_start = p.here();

        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let i_loop = p.label();
        p.push(Instruction::Addi {
            rd: j,
            ra: Reg(0),
            imm: 0,
        });
        let j_loop = p.label();
        p.push(Instruction::Addi {
            rd: acc,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: k,
            ra: Reg(0),
            imm: 0,
        });
        let k_loop = p.label();
        // A[i*n + k]
        p.push(Instruction::Mul {
            rd: idx,
            ra: i,
            rb: nn,
        });
        p.push(Instruction::Add {
            rd: idx,
            ra: idx,
            rb: k,
        });
        p.push(Instruction::Slli {
            rd: idx,
            ra: idx,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: a_base,
            rb: idx,
        });
        p.push(Instruction::Lwz {
            rd: va,
            ra: ptr,
            offset: 0,
        });
        // B[k*n + j]
        p.push(Instruction::Mul {
            rd: idx,
            ra: k,
            rb: nn,
        });
        p.push(Instruction::Add {
            rd: idx,
            ra: idx,
            rb: j,
        });
        p.push(Instruction::Slli {
            rd: idx,
            ra: idx,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: b_base,
            rb: idx,
        });
        p.push(Instruction::Lwz {
            rd: vb,
            ra: ptr,
            offset: 0,
        });
        // acc += A * B
        p.push(Instruction::Mul {
            rd: prod,
            ra: va,
            rb: vb,
        });
        p.push(Instruction::Add {
            rd: acc,
            ra: acc,
            rb: prod,
        });
        p.push(Instruction::Addi {
            rd: k,
            ra: k,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: k, rb: nn });
        p.branch_if_flag(k_loop);
        // C[i*n + j] = acc
        p.push(Instruction::Mul {
            rd: idx,
            ra: i,
            rb: nn,
        });
        p.push(Instruction::Add {
            rd: idx,
            ra: idx,
            rb: j,
        });
        p.push(Instruction::Slli {
            rd: idx,
            ra: idx,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: c_base,
            rb: idx,
        });
        p.push(Instruction::Sw {
            ra: ptr,
            rb: acc,
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: j,
            ra: j,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: j, rb: nn });
        p.branch_if_flag(j_loop);
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: nn });
        p.branch_if_flag(i_loop);
        let kernel_end = p.here();
        (p.build(), kernel_start..kernel_end)
    }
}

impl Benchmark for MatrixMultiplyBenchmark {
    fn name(&self) -> &'static str {
        match self.width {
            ElementWidth::Bits8 => "mat_mult_8bit",
            ElementWidth::Bits16 => "mat_mult_16bit",
        }
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        3 * self.n * self.n + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        memory
            .write_block(self.a_base(), &self.a)
            .expect("data memory large enough");
        memory
            .write_block(self.b_base(), &self.b)
            .expect("data memory large enough");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let golden = self.golden_product();
        let got = memory.read_block(self.c_base(), self.n * self.n).ok()?;
        let sum_sq: f64 = golden
            .iter()
            .zip(&got)
            .map(|(&g, &o)| {
                let d = g as f64 - o as f64;
                d * d
            })
            .sum();
        Some(sum_sq / (self.n * self.n) as f64)
    }

    fn error_metric(&self) -> &'static str {
        "mean squared error"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_cpu::{Core, RunConfig};

    fn run(bench: &MatrixMultiplyBenchmark) -> Core {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "outcome: {outcome:?}");
        core
    }

    #[test]
    fn fault_free_run_is_correct_8bit() {
        let bench = MatrixMultiplyBenchmark::new(4, ElementWidth::Bits8, 11);
        let core = run(&bench);
        assert_eq!(bench.output_error(core.memory()), 0.0);
        assert_eq!(
            core.memory().read_block(bench.c_base(), 16).unwrap(),
            bench.golden_product()
        );
    }

    #[test]
    fn fault_free_run_is_correct_16bit_paper_size() {
        let bench = MatrixMultiplyBenchmark::new(16, ElementWidth::Bits16, 5);
        let core = run(&bench);
        assert_eq!(bench.output_error(core.memory()), 0.0);
        let stats = core.stats();
        assert!(
            stats.multiplications > 4096,
            "three muls per inner iteration"
        );
        assert!(stats.compute_fraction() > 0.5, "matmul is compute oriented");
        assert!(
            stats.cycles > 30_000,
            "16x16 matmul runs for tens of kCycles"
        );
    }

    #[test]
    fn mse_reflects_corruption_scale() {
        let bench = MatrixMultiplyBenchmark::new(4, ElementWidth::Bits8, 3);
        let mut core = run(&bench);
        let addr = bench.c_base();
        let golden = core.memory().load_word(addr).unwrap();
        core.memory_mut()
            .store_word(addr, golden.wrapping_add(10))
            .unwrap();
        let small = bench.output_error(core.memory());
        core.memory_mut()
            .store_word(addr, golden.wrapping_add(1000))
            .unwrap();
        let large = bench.output_error(core.memory());
        assert!(small > 0.0);
        assert!(large > small * 100.0);
    }

    #[test]
    fn names_and_metric() {
        let b8 = MatrixMultiplyBenchmark::new(4, ElementWidth::Bits8, 0);
        let b16 = MatrixMultiplyBenchmark::new(4, ElementWidth::Bits16, 0);
        assert_eq!(b8.name(), "mat_mult_8bit");
        assert_eq!(b16.name(), "mat_mult_16bit");
        assert_eq!(b8.error_metric(), "mean squared error");
        assert!(
            b16.a.iter().any(|&v| v >= 256),
            "16-bit inputs exceed the 8-bit range"
        );
        assert!(b8.a.iter().all(|&v| v < 256));
    }

    #[test]
    #[should_panic(expected = "matrix size")]
    fn oversized_matrix_panics() {
        MatrixMultiplyBenchmark::new(100, ElementWidth::Bits8, 0);
    }
}
