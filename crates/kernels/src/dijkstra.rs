//! The Dijkstra shortest-path benchmark (all-pairs over a small graph).
//!
//! Heavily control oriented: the kernel is dominated by comparisons,
//! branches and memory accesses, with multiplications only in address
//! arithmetic — the benchmark with the narrowest transition region in the
//! paper (Fig. 6(d)).

use crate::data::random_graph;
use crate::Benchmark;
use sfi_cpu::Memory;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Program, Reg};
use std::ops::Range;

/// Infinity marker used for unreachable distances.
pub const UNREACHABLE: u32 = 0x7FFF_FFFF;

/// All-pairs shortest paths on a small weighted graph via repeated
/// Dijkstra runs (O(n²) selection, no priority queue).
#[derive(Debug, Clone)]
pub struct DijkstraBenchmark {
    nodes: usize,
    adjacency: Vec<Vec<u32>>,
    program: Program,
    fi_window: Range<u32>,
}

impl DijkstraBenchmark {
    const ADJ_BASE: u32 = 0;

    /// Creates the benchmark for a random connected graph of `nodes` nodes
    /// (the paper uses 10).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is smaller than 2 or larger than 32.
    pub fn new(nodes: usize, seed: u64) -> Self {
        assert!(
            (2..=32).contains(&nodes),
            "node count must be in 2..=32, got {nodes}"
        );
        let adjacency = random_graph(nodes, 50, seed);
        let (program, fi_window) = Self::build_program(nodes);
        DijkstraBenchmark {
            nodes,
            adjacency,
            program,
            fi_window,
        }
    }

    fn dist_base(&self) -> u32 {
        Self::ADJ_BASE + (4 * self.nodes * self.nodes) as u32
    }

    /// Byte address of the per-run visited flags (scratch storage used by
    /// the kernel, exposed for inspection in tests and tools).
    pub fn visited_base(&self) -> u32 {
        self.dist_base() + (4 * self.nodes * self.nodes) as u32
    }

    /// The golden all-pairs shortest-distance matrix, row major.
    pub fn golden_distances(&self) -> Vec<u32> {
        let n = self.nodes;
        let mut all = vec![UNREACHABLE; n * n];
        for source in 0..n {
            let mut dist = vec![UNREACHABLE; n];
            let mut visited = vec![false; n];
            dist[source] = 0;
            for _ in 0..n {
                let mut best = UNREACHABLE;
                let mut u = 0;
                for (i, &d) in dist.iter().enumerate() {
                    if !visited[i] && d < best {
                        best = d;
                        u = i;
                    }
                }
                visited[u] = true;
                if dist[u] == UNREACHABLE {
                    continue;
                }
                for v in 0..n {
                    let w = self.adjacency[u][v];
                    if w != 0 {
                        let candidate = dist[u].wrapping_add(w);
                        if candidate < dist[v] {
                            dist[v] = candidate;
                        }
                    }
                }
            }
            all[source * n..(source + 1) * n].copy_from_slice(&dist);
        }
        all
    }

    fn build_program(n: usize) -> (Program, Range<u32>) {
        let mut p = ProgramBuilder::new();
        let adj_base = Reg(1);
        let n_reg = Reg(2);
        let dist_base = Reg(3);
        let visited_base = Reg(4);
        let source = Reg(5);
        let i = Reg(6);
        let addr = Reg(7);
        let addr2 = Reg(8);
        let iter = Reg(9);
        let best = Reg(10);
        let best_u = Reg(11);
        let val = Reg(12);
        let one = Reg(13);
        let weight = Reg(15);
        let du = Reg(16);
        let cand = Reg(17);
        let dv = Reg(18);
        let inf = Reg(31);

        // Prologue.
        p.push(Instruction::Addi {
            rd: adj_base,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: n_reg,
            ra: Reg(0),
            imm: n as i16,
        });
        p.load_immediate(dist_base, (4 * n * n) as u32);
        p.load_immediate(visited_base, (8 * n * n) as u32);
        p.load_immediate(inf, UNREACHABLE);
        p.push(Instruction::Addi {
            rd: one,
            ra: Reg(0),
            imm: 1,
        });
        let kernel_start = p.here();

        p.push(Instruction::Addi {
            rd: source,
            ra: Reg(0),
            imm: 0,
        });
        let source_loop = p.label();
        // Initialise dist[source][*] = INF, visited[*] = 0.
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let init_loop = p.label();
        p.push(Instruction::Mul {
            rd: addr,
            ra: source,
            rb: n_reg,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: i,
        });
        p.push(Instruction::Slli {
            rd: addr,
            ra: addr,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: dist_base,
        });
        p.push(Instruction::Sw {
            ra: addr,
            rb: inf,
            offset: 0,
        });
        p.push(Instruction::Slli {
            rd: addr2,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr2,
            ra: addr2,
            rb: visited_base,
        });
        p.push(Instruction::Sw {
            ra: addr2,
            rb: Reg(0),
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n_reg });
        p.branch_if_flag(init_loop);
        // dist[source][source] = 0.
        p.push(Instruction::Mul {
            rd: addr,
            ra: source,
            rb: n_reg,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: source,
        });
        p.push(Instruction::Slli {
            rd: addr,
            ra: addr,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: dist_base,
        });
        p.push(Instruction::Sw {
            ra: addr,
            rb: Reg(0),
            offset: 0,
        });

        // Main loop: n rounds of select-minimum + relax.
        p.push(Instruction::Addi {
            rd: iter,
            ra: Reg(0),
            imm: 0,
        });
        let main_loop = p.label();
        // Find the unvisited node with the smallest distance.
        p.push(Instruction::Or {
            rd: best,
            ra: inf,
            rb: Reg(0),
        });
        p.push(Instruction::Addi {
            rd: best_u,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let find_loop = p.label();
        p.push(Instruction::Slli {
            rd: addr2,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr2,
            ra: addr2,
            rb: visited_base,
        });
        p.push(Instruction::Lwz {
            rd: val,
            ra: addr2,
            offset: 0,
        });
        p.push(Instruction::Sfne {
            ra: val,
            rb: Reg(0),
        });
        let find_skip = p.forward_label();
        p.branch_if_flag(find_skip);
        p.push(Instruction::Mul {
            rd: addr,
            ra: source,
            rb: n_reg,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: i,
        });
        p.push(Instruction::Slli {
            rd: addr,
            ra: addr,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: dist_base,
        });
        p.push(Instruction::Lwz {
            rd: val,
            ra: addr,
            offset: 0,
        });
        p.push(Instruction::Sfltu { ra: val, rb: best });
        p.branch_if_not_flag(find_skip);
        p.push(Instruction::Or {
            rd: best,
            ra: val,
            rb: Reg(0),
        });
        p.push(Instruction::Or {
            rd: best_u,
            ra: i,
            rb: Reg(0),
        });
        p.bind(find_skip);
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n_reg });
        p.branch_if_flag(find_loop);
        // Mark the selected node visited.
        p.push(Instruction::Slli {
            rd: addr2,
            ra: best_u,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr2,
            ra: addr2,
            rb: visited_base,
        });
        p.push(Instruction::Sw {
            ra: addr2,
            rb: one,
            offset: 0,
        });
        // Relax all its neighbours (skip if it is unreachable).
        p.push(Instruction::Sfeq { ra: best, rb: inf });
        let relax_end = p.forward_label();
        p.branch_if_flag(relax_end);
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let relax_loop = p.label();
        p.push(Instruction::Mul {
            rd: addr,
            ra: best_u,
            rb: n_reg,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: i,
        });
        p.push(Instruction::Slli {
            rd: addr,
            ra: addr,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: adj_base,
        });
        p.push(Instruction::Lwz {
            rd: weight,
            ra: addr,
            offset: 0,
        });
        p.push(Instruction::Sfeq {
            ra: weight,
            rb: Reg(0),
        });
        let relax_skip = p.forward_label();
        p.branch_if_flag(relax_skip);
        // dist[source][best_u] + w vs dist[source][i]
        p.push(Instruction::Mul {
            rd: addr,
            ra: source,
            rb: n_reg,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: best_u,
        });
        p.push(Instruction::Slli {
            rd: addr,
            ra: addr,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: dist_base,
        });
        p.push(Instruction::Lwz {
            rd: du,
            ra: addr,
            offset: 0,
        });
        p.push(Instruction::Add {
            rd: cand,
            ra: du,
            rb: weight,
        });
        p.push(Instruction::Mul {
            rd: addr,
            ra: source,
            rb: n_reg,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: i,
        });
        p.push(Instruction::Slli {
            rd: addr,
            ra: addr,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: addr,
            ra: addr,
            rb: dist_base,
        });
        p.push(Instruction::Lwz {
            rd: dv,
            ra: addr,
            offset: 0,
        });
        p.push(Instruction::Sfltu { ra: cand, rb: dv });
        p.branch_if_not_flag(relax_skip);
        p.push(Instruction::Sw {
            ra: addr,
            rb: cand,
            offset: 0,
        });
        p.bind(relax_skip);
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n_reg });
        p.branch_if_flag(relax_loop);
        p.bind(relax_end);
        p.push(Instruction::Addi {
            rd: iter,
            ra: iter,
            imm: 1,
        });
        p.push(Instruction::Sfltu {
            ra: iter,
            rb: n_reg,
        });
        p.branch_if_flag(main_loop);
        // Next source.
        p.push(Instruction::Addi {
            rd: source,
            ra: source,
            imm: 1,
        });
        p.push(Instruction::Sfltu {
            ra: source,
            rb: n_reg,
        });
        p.branch_if_flag(source_loop);
        let kernel_end = p.here();
        (p.build(), kernel_start..kernel_end)
    }
}

impl Benchmark for DijkstraBenchmark {
    fn name(&self) -> &'static str {
        "dijkstra"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        2 * self.nodes * self.nodes + self.nodes + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        let words: Vec<u32> = self.adjacency.iter().flatten().copied().collect();
        memory
            .write_block(Self::ADJ_BASE, &words)
            .expect("data memory large enough");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let golden = self.golden_distances();
        let got = memory
            .read_block(self.dist_base(), self.nodes * self.nodes)
            .ok()?;
        let mismatches = golden.iter().zip(&got).filter(|(g, o)| g != o).count();
        Some(mismatches as f64 / golden.len() as f64)
    }

    fn error_metric(&self) -> &'static str {
        "mismatch in min. distance"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_cpu::{Core, RunConfig};

    fn run(bench: &DijkstraBenchmark) -> Core {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "outcome: {outcome:?}");
        core
    }

    #[test]
    fn fault_free_run_matches_golden() {
        let bench = DijkstraBenchmark::new(10, 21);
        let core = run(&bench);
        assert_eq!(bench.output_error(core.memory()), 0.0);
        let got = core.memory().read_block(bench.dist_base(), 100).unwrap();
        assert_eq!(got, bench.golden_distances());
        // The distance matrix of a connected graph has zero diagonal and
        // positive off-diagonal entries.
        for s in 0..10 {
            assert_eq!(got[s * 10 + s], 0);
        }
        assert!(got.iter().filter(|&&d| d > 0).count() >= 90);
    }

    #[test]
    fn control_oriented_character() {
        let bench = DijkstraBenchmark::new(10, 4);
        let core = run(&bench);
        let stats = core.stats();
        assert!(
            stats.control_fraction() > 0.15,
            "dijkstra is control oriented"
        );
        assert!(
            stats.comparisons > stats.multiplications,
            "comparisons dominate multiplications"
        );
        assert!(stats.cycles > 20_000);
    }

    #[test]
    fn corrupted_distance_detected() {
        let bench = DijkstraBenchmark::new(5, 8);
        let mut core = run(&bench);
        let base = bench.dist_base();
        let golden = core.memory().load_word(base + 4).unwrap();
        core.memory_mut().store_word(base + 4, golden + 1).unwrap();
        let err = bench.output_error(core.memory());
        assert!((err - 1.0 / 25.0).abs() < 1e-12);
        assert_eq!(bench.error_metric(), "mismatch in min. distance");
        assert_eq!(bench.name(), "dijkstra");
    }

    #[test]
    fn smaller_graphs_also_work() {
        for n in [2, 3, 6] {
            let bench = DijkstraBenchmark::new(n, 5);
            let core = run(&bench);
            assert_eq!(bench.output_error(core.memory()), 0.0, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn oversized_graph_panics() {
        DijkstraBenchmark::new(64, 0);
    }
}
