//! Benchmark kernels for the statistical fault-injection case study.
//!
//! The paper evaluates four widely used kernels with different
//! compute/control characteristics (its Table 1):
//!
//! | benchmark | type | compute | control | size | output error metric |
//! |---|---|---|---|---|---|
//! | [`median::MedianBenchmark`] | sorting | – | + | 129 values | relative difference |
//! | [`matmul::MatrixMultiplyBenchmark`] | arithmetic | ++ | – | 16×16, 8/16-bit | mean squared error |
//! | [`kmeans::KMeansBenchmark`] | data mining | + | + | 8 points (2-D) | cluster membership mismatch |
//! | [`dijkstra::DijkstraBenchmark`] | graph search | – | ++ | 10 nodes | mismatch in min. distance |
//!
//! The extended workload zoo adds four kernels with compute/control mixes
//! the paper suite does not cover (see [`extended_suite`]):
//!
//! | benchmark | type | compute | control | size | output error metric |
//! |---|---|---|---|---|---|
//! | [`fft::FftBenchmark`] | signal processing | ++ | + | 64-pt complex, Q14 | noise-to-signal energy ratio |
//! | [`fir::FirBenchmark`] | filtering | ++ | – | 16 taps × 64 outputs | mean squared error |
//! | [`crc32::Crc32Benchmark`] | coding | – | ++ | 128 words | exact match |
//! | [`bitonic::BitonicSortBenchmark`] | sorting network | + | + | 64 values | normalized inversion count |
//!
//! Every benchmark provides the program (written against `sfi-isa`), the
//! input data it loads into the ISS data memory, a golden reference
//! computed in Rust, and its output-quality metric.
//!
//! # Example
//!
//! ```
//! use sfi_kernels::{Benchmark, median::MedianBenchmark};
//! use sfi_cpu::{Core, RunConfig};
//!
//! let bench = MedianBenchmark::new(21, 1);
//! let mut core = Core::new(bench.program().clone(), bench.dmem_words());
//! bench.initialize(core.memory_mut());
//! let outcome = core.run(&RunConfig::default());
//! assert!(outcome.finished());
//! assert_eq!(bench.output_error(core.memory()), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod crc32;
pub mod data;
pub mod dijkstra;
pub mod fft;
pub mod fir;
pub mod guest;
pub mod kmeans;
pub mod matmul;
pub mod median;

use sfi_cpu::Memory;
use sfi_isa::Program;
use std::ops::Range;

/// A runnable benchmark kernel with inputs, golden reference and quality
/// metric.
pub trait Benchmark {
    /// Short name of the benchmark (e.g. `"median"`).
    fn name(&self) -> &'static str;

    /// The program to load into the instruction memory.
    fn program(&self) -> &Program;

    /// The program-counter range of the kernel part (fault injection is
    /// restricted to this window, as in the paper).
    fn fi_window(&self) -> Range<u32>;

    /// Size of the data memory the benchmark needs, in words.
    fn dmem_words(&self) -> usize;

    /// Writes the input data into the data memory.
    fn initialize(&self, memory: &mut Memory);

    /// The kernel-specific output error of a completed run, or `None` when
    /// the output region itself cannot be read back (out-of-range or
    /// misaligned — machine state corrupt rather than a wrong value).
    ///
    /// `Some(0.0)` means the output is exactly correct; larger values mean
    /// worse quality on a metric-specific scale (see
    /// [`Benchmark::error_metric`]).
    fn try_output_error(&self, memory: &Memory) -> Option<f64>;

    /// The kernel-specific output error of a completed run; `0.0` means the
    /// output is exactly correct.  Larger values mean worse quality; the
    /// scale is metric-specific (see [`Benchmark::error_metric`]).
    ///
    /// An unreadable output region reports `NaN` — the same marker crashed
    /// runs carry — so "machine state corrupt" is never conflated with a
    /// wrong but bounded output value.
    fn output_error(&self, memory: &Memory) -> f64 {
        self.try_output_error(memory).unwrap_or(f64::NAN)
    }

    /// Human-readable name of the output error metric.
    fn error_metric(&self) -> &'static str;

    /// Whether a completed run produced a fully correct output.
    fn is_correct(&self, memory: &Memory) -> bool {
        self.output_error(memory) == 0.0
    }
}

/// The paper's standard benchmark suite (Table 1) at its published sizes.
///
/// The benchmarks are `Send + Sync` so campaign engines can share them
/// across worker threads.
pub fn paper_suite(seed: u64) -> Vec<Box<dyn Benchmark + Send + Sync>> {
    vec![
        Box::new(median::MedianBenchmark::new(129, seed)),
        Box::new(matmul::MatrixMultiplyBenchmark::new(
            16,
            matmul::ElementWidth::Bits8,
            seed,
        )),
        Box::new(matmul::MatrixMultiplyBenchmark::new(
            16,
            matmul::ElementWidth::Bits16,
            seed,
        )),
        Box::new(kmeans::KMeansBenchmark::new(8, 2, 12, seed)),
        Box::new(dijkstra::DijkstraBenchmark::new(10, seed)),
    ]
}

/// The extended workload zoo: the paper suite plus the four kernels with
/// compute/control mixes the paper does not cover (FFT, FIR, CRC32 and the
/// bitonic sorting network) at their default sizes.
pub fn extended_suite(seed: u64) -> Vec<Box<dyn Benchmark + Send + Sync>> {
    let mut suite = paper_suite(seed);
    suite.push(Box::new(fft::FftBenchmark::new(64, seed)));
    suite.push(Box::new(fir::FirBenchmark::new(16, 64, seed)));
    suite.push(Box::new(crc32::Crc32Benchmark::new(128, seed)));
    suite.push(Box::new(bitonic::BitonicSortBenchmark::new(64, seed)));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_five_entries() {
        let suite = paper_suite(3);
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert!(names.contains(&"median"));
        assert!(names.contains(&"mat_mult_8bit"));
        assert!(names.contains(&"mat_mult_16bit"));
        assert!(names.contains(&"kmeans"));
        assert!(names.contains(&"dijkstra"));
    }

    #[test]
    fn extended_suite_adds_the_zoo_kernels() {
        let suite = extended_suite(3);
        assert_eq!(suite.len(), 9);
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        for name in ["fft", "fir", "crc32", "bitonic_sort"] {
            assert!(names.contains(&name), "missing {name}");
        }
        // Names are unique: campaign tooling keys streams off them.
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }
}
