//! Benchmark kernels for the statistical fault-injection case study.
//!
//! The paper evaluates four widely used kernels with different
//! compute/control characteristics (its Table 1):
//!
//! | benchmark | type | compute | control | size | output error metric |
//! |---|---|---|---|---|---|
//! | [`median::MedianBenchmark`] | sorting | – | + | 129 values | relative difference |
//! | [`matmul::MatrixMultiplyBenchmark`] | arithmetic | ++ | – | 16×16, 8/16-bit | mean squared error |
//! | [`kmeans::KMeansBenchmark`] | data mining | + | + | 8 points (2-D) | cluster membership mismatch |
//! | [`dijkstra::DijkstraBenchmark`] | graph search | – | ++ | 10 nodes | mismatch in min. distance |
//!
//! Every benchmark provides the program (written against `sfi-isa`), the
//! input data it loads into the ISS data memory, a golden reference
//! computed in Rust, and its output-quality metric.
//!
//! # Example
//!
//! ```
//! use sfi_kernels::{Benchmark, median::MedianBenchmark};
//! use sfi_cpu::{Core, RunConfig};
//!
//! let bench = MedianBenchmark::new(21, 1);
//! let mut core = Core::new(bench.program().clone(), bench.dmem_words());
//! bench.initialize(core.memory_mut());
//! let outcome = core.run(&RunConfig::default());
//! assert!(outcome.finished());
//! assert_eq!(bench.output_error(core.memory()), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod dijkstra;
pub mod kmeans;
pub mod matmul;
pub mod median;

use sfi_cpu::Memory;
use sfi_isa::Program;
use std::ops::Range;

/// A runnable benchmark kernel with inputs, golden reference and quality
/// metric.
pub trait Benchmark {
    /// Short name of the benchmark (e.g. `"median"`).
    fn name(&self) -> &'static str;

    /// The program to load into the instruction memory.
    fn program(&self) -> &Program;

    /// The program-counter range of the kernel part (fault injection is
    /// restricted to this window, as in the paper).
    fn fi_window(&self) -> Range<u32>;

    /// Size of the data memory the benchmark needs, in words.
    fn dmem_words(&self) -> usize;

    /// Writes the input data into the data memory.
    fn initialize(&self, memory: &mut Memory);

    /// The kernel-specific output error of a completed run; `0.0` means the
    /// output is exactly correct.  Larger values mean worse quality; the
    /// scale is metric-specific (see [`Benchmark::error_metric`]).
    fn output_error(&self, memory: &Memory) -> f64;

    /// Human-readable name of the output error metric.
    fn error_metric(&self) -> &'static str;

    /// Whether a completed run produced a fully correct output.
    fn is_correct(&self, memory: &Memory) -> bool {
        self.output_error(memory) == 0.0
    }
}

/// The paper's standard benchmark suite (Table 1) at its published sizes.
///
/// The benchmarks are `Send + Sync` so campaign engines can share them
/// across worker threads.
pub fn paper_suite(seed: u64) -> Vec<Box<dyn Benchmark + Send + Sync>> {
    vec![
        Box::new(median::MedianBenchmark::new(129, seed)),
        Box::new(matmul::MatrixMultiplyBenchmark::new(
            16,
            matmul::ElementWidth::Bits8,
            seed,
        )),
        Box::new(matmul::MatrixMultiplyBenchmark::new(
            16,
            matmul::ElementWidth::Bits16,
            seed,
        )),
        Box::new(kmeans::KMeansBenchmark::new(8, 2, 12, seed)),
        Box::new(dijkstra::DijkstraBenchmark::new(10, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_five_entries() {
        let suite = paper_suite(3);
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert!(names.contains(&"median"));
        assert!(names.contains(&"mat_mult_8bit"));
        assert!(names.contains(&"mat_mult_16bit"));
        assert!(names.contains(&"kmeans"));
        assert!(names.contains(&"dijkstra"));
    }
}
