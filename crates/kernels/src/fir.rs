//! The FIR-filter benchmark: a direct-form finite impulse response filter.
//!
//! Dot-product heavy — one multiply-accumulate per tap per output sample —
//! with only the two loop branches as control flow.  Compared with matmul
//! it streams through memory with a sliding window instead of re-walking
//! whole rows, which excites a different load/ALU interleaving.

use crate::data::random_values;
use crate::Benchmark;
use sfi_cpu::Memory;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Program, Reg};
use std::ops::Range;

/// Direct-form FIR filter `y[i] = Σ_t h[t] · x[i+t]` over unsigned samples
/// with wrapping 32-bit arithmetic.
#[derive(Debug, Clone)]
pub struct FirBenchmark {
    taps: Vec<u32>,
    samples: Vec<u32>,
    outputs: usize,
    program: Program,
    fi_window: Range<u32>,
}

impl FirBenchmark {
    /// Byte address of the input sample array.
    const SAMPLES_BASE: u32 = 0;

    /// Creates the benchmark with `taps` filter coefficients (8-bit) and
    /// `outputs` output samples over a 16-bit input stream.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is not in `1..=64` or `outputs` is not in
    /// `1..=1024`.
    pub fn new(taps: usize, outputs: usize, seed: u64) -> Self {
        assert!(
            (1..=64).contains(&taps),
            "tap count must be in 1..=64, got {taps}"
        );
        assert!(
            (1..=1024).contains(&outputs),
            "output count must be in 1..=1024, got {outputs}"
        );
        let samples = random_values(outputs + taps - 1, 1 << 16, seed);
        let taps = random_values(taps, 1 << 8, seed.wrapping_add(1));
        let (program, fi_window) = Self::build_program(taps.len(), outputs, samples.len());
        FirBenchmark {
            taps,
            samples,
            outputs,
            program,
            fi_window,
        }
    }

    fn taps_base(&self) -> u32 {
        Self::SAMPLES_BASE + 4 * self.samples.len() as u32
    }

    fn output_base(&self) -> u32 {
        self.taps_base() + 4 * self.taps.len() as u32
    }

    /// The golden (fault-free) filter output, with the same wrapping
    /// 32-bit arithmetic as the hardware.
    pub fn golden_output(&self) -> Vec<u32> {
        (0..self.outputs)
            .map(|i| {
                self.taps.iter().enumerate().fold(0u32, |acc, (t, &h)| {
                    acc.wrapping_add(h.wrapping_mul(self.samples[i + t]))
                })
            })
            .collect()
    }

    fn build_program(taps: usize, outputs: usize, samples: usize) -> (Program, Range<u32>) {
        let mut p = ProgramBuilder::new();
        let (x_base, h_base, y_base, ntaps, nout) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        let (i, t, acc, xi) = (Reg(6), Reg(7), Reg(8), Reg(10));
        let (off, ptr, va, vb, prod) = (Reg(11), Reg(12), Reg(13), Reg(14), Reg(15));

        // Prologue (outside the FI window): base addresses and sizes.
        p.push(Instruction::Addi {
            rd: x_base,
            ra: Reg(0),
            imm: Self::SAMPLES_BASE as i16,
        });
        p.load_immediate(h_base, (4 * samples) as u32);
        p.load_immediate(y_base, (4 * (samples + taps)) as u32);
        p.push(Instruction::Addi {
            rd: ntaps,
            ra: Reg(0),
            imm: taps as i16,
        });
        p.load_immediate(nout, outputs as u32);
        let kernel_start = p.here();

        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let outer = p.label();
        p.push(Instruction::Addi {
            rd: acc,
            ra: Reg(0),
            imm: 0,
        });
        p.push(Instruction::Addi {
            rd: t,
            ra: Reg(0),
            imm: 0,
        });
        // xi = &x[i]
        p.push(Instruction::Slli {
            rd: off,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: xi,
            ra: x_base,
            rb: off,
        });
        let inner = p.label();
        // acc += h[t] * x[i + t]
        p.push(Instruction::Slli {
            rd: off,
            ra: t,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: xi,
            rb: off,
        });
        p.push(Instruction::Lwz {
            rd: va,
            ra: ptr,
            offset: 0,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: h_base,
            rb: off,
        });
        p.push(Instruction::Lwz {
            rd: vb,
            ra: ptr,
            offset: 0,
        });
        p.push(Instruction::Mul {
            rd: prod,
            ra: va,
            rb: vb,
        });
        p.push(Instruction::Add {
            rd: acc,
            ra: acc,
            rb: prod,
        });
        p.push(Instruction::Addi {
            rd: t,
            ra: t,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: t, rb: ntaps });
        p.branch_if_flag(inner);
        // y[i] = acc
        p.push(Instruction::Slli {
            rd: off,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: y_base,
            rb: off,
        });
        p.push(Instruction::Sw {
            ra: ptr,
            rb: acc,
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: nout });
        p.branch_if_flag(outer);
        let kernel_end = p.here();
        (p.build(), kernel_start..kernel_end)
    }
}

impl Benchmark for FirBenchmark {
    fn name(&self) -> &'static str {
        "fir"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        self.samples.len() + self.taps.len() + self.outputs + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        memory
            .write_block(Self::SAMPLES_BASE, &self.samples)
            .expect("data memory large enough");
        memory
            .write_block(self.taps_base(), &self.taps)
            .expect("data memory large enough");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let golden = self.golden_output();
        let got = memory.read_block(self.output_base(), self.outputs).ok()?;
        let sum_sq: f64 = golden
            .iter()
            .zip(&got)
            .map(|(&g, &o)| {
                let d = g as f64 - o as f64;
                d * d
            })
            .sum();
        Some(sum_sq / self.outputs as f64)
    }

    fn error_metric(&self) -> &'static str {
        "mean squared error"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_cpu::{Core, RunConfig};

    fn run(bench: &FirBenchmark) -> Core {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "outcome: {outcome:?}");
        core
    }

    #[test]
    fn fault_free_run_matches_golden() {
        for (taps, outputs) in [(1, 1), (4, 16), (16, 64)] {
            let bench = FirBenchmark::new(taps, outputs, 9);
            let core = run(&bench);
            assert_eq!(
                bench.try_output_error(core.memory()),
                Some(0.0),
                "{taps} taps, {outputs} outputs"
            );
            assert!(bench.is_correct(core.memory()));
            assert_eq!(
                core.memory()
                    .read_block(bench.output_base(), outputs)
                    .unwrap(),
                bench.golden_output()
            );
        }
    }

    #[test]
    fn kernel_is_compute_heavy() {
        let bench = FirBenchmark::new(16, 64, 1);
        let core = run(&bench);
        let stats = core.stats();
        assert!(
            stats.multiplications >= 1024,
            "one multiplication per tap per output"
        );
        assert!(stats.compute_fraction() > 0.4, "FIR is compute oriented");
    }

    #[test]
    fn mse_reflects_corruption_scale() {
        let bench = FirBenchmark::new(4, 8, 3);
        let mut core = run(&bench);
        let addr = bench.output_base();
        let golden = core.memory().load_word(addr).unwrap();
        core.memory_mut()
            .store_word(addr, golden.wrapping_add(10))
            .unwrap();
        let small = bench.output_error(core.memory());
        core.memory_mut()
            .store_word(addr, golden.wrapping_add(1000))
            .unwrap();
        let large = bench.output_error(core.memory());
        assert!(small > 0.0);
        assert!(large > small * 100.0);
        assert!(!bench.is_correct(core.memory()));
        assert_eq!(bench.error_metric(), "mean squared error");
        assert_eq!(bench.name(), "fir");
    }

    #[test]
    #[should_panic(expected = "tap count")]
    fn oversized_taps_panic() {
        FirBenchmark::new(100, 8, 0);
    }
}
