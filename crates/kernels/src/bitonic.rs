//! The bitonic sorting-network benchmark.
//!
//! Unlike the median kernel's data-dependent bubble sort, the bitonic
//! network executes a fixed sequence of compare-exchange operations whose
//! *addresses* never depend on the data, and each compare-exchange is
//! computed branch-free with the sign-mask select idiom — so timing errors
//! in the datapath corrupt values rather than control flow.  The output
//! quality metric is the normalized inversion count of the result, which
//! degrades gracefully with the number of corrupted exchanges.

use crate::data::random_values;
use crate::Benchmark;
use sfi_cpu::Memory;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Program, Reg};
use std::ops::Range;

/// Ascending bitonic sort of `n` values via the classic `k`/`j` loop nest
/// of compare-exchange stages.
#[derive(Debug, Clone)]
pub struct BitonicSortBenchmark {
    values: Vec<u32>,
    program: Program,
    fi_window: Range<u32>,
}

impl BitonicSortBenchmark {
    /// Byte address of the array (sorted in place).
    const ARRAY_BASE: u32 = 0;

    /// Creates the benchmark for `n` values.
    ///
    /// Values are bounded below `2^16` so the branch-free sign-mask
    /// compare never sees a difference overflowing 32-bit two's
    /// complement.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two in `4..=256`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(
            (4..=256).contains(&n) && n.is_power_of_two(),
            "size must be a power of two in 4..=256, got {n}"
        );
        let values = random_values(n, 1 << 16, seed);
        let (program, fi_window) = Self::build_program(n);
        BitonicSortBenchmark {
            values,
            program,
            fi_window,
        }
    }

    /// The golden (fault-free) ascending-sorted array.
    pub fn golden_sorted(&self) -> Vec<u32> {
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        sorted
    }

    fn build_program(n: usize) -> (Program, Range<u32>) {
        let mut p = ProgramBuilder::new();
        let (base, n_reg, k, j, i, l) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
        let (t, ptr_i, ptr_l) = (Reg(7), Reg(8), Reg(10));
        let (a, b, d, mask) = (Reg(11), Reg(12), Reg(13), Reg(14));
        let (dir, e, min_v, max_v, v_i, v_l) =
            (Reg(15), Reg(16), Reg(17), Reg(18), Reg(19), Reg(20));

        // Prologue (outside the FI window).
        p.push(Instruction::Addi {
            rd: base,
            ra: Reg(0),
            imm: Self::ARRAY_BASE as i16,
        });
        p.push(Instruction::Addi {
            rd: n_reg,
            ra: Reg(0),
            imm: n as i16,
        });
        let kernel_start = p.here();

        p.push(Instruction::Addi {
            rd: k,
            ra: Reg(0),
            imm: 2,
        });
        let k_loop = p.label();
        p.push(Instruction::Srli {
            rd: j,
            ra: k,
            shamt: 1,
        });
        let j_loop = p.label();
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let i_loop = p.label();
        // Partner index; each pair is handled once, from its lower end.
        p.push(Instruction::Xor {
            rd: l,
            ra: i,
            rb: j,
        });
        p.push(Instruction::Sfgtu { ra: l, rb: i });
        let next = p.forward_label();
        p.branch_if_not_flag(next);
        p.push(Instruction::Slli {
            rd: t,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr_i,
            ra: base,
            rb: t,
        });
        p.push(Instruction::Lwz {
            rd: a,
            ra: ptr_i,
            offset: 0,
        });
        p.push(Instruction::Slli {
            rd: t,
            ra: l,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr_l,
            ra: base,
            rb: t,
        });
        p.push(Instruction::Lwz {
            rd: b,
            ra: ptr_l,
            offset: 0,
        });
        // Branch-free compare-exchange: with both values below 2^31 the
        // sign of d = a - b decides the order, so
        //   mask = d >>_s 31, min = b + (d & mask), max = a - (d & mask).
        p.push(Instruction::Sub {
            rd: d,
            ra: a,
            rb: b,
        });
        p.push(Instruction::Srai {
            rd: mask,
            ra: d,
            shamt: 31,
        });
        p.push(Instruction::And {
            rd: t,
            ra: d,
            rb: mask,
        });
        p.push(Instruction::Add {
            rd: min_v,
            ra: b,
            rb: t,
        });
        p.push(Instruction::Sub {
            rd: max_v,
            ra: a,
            rb: t,
        });
        // Branch-free direction select: dir = all-ones iff (i & k) != 0
        // (descending half of the merge), which swaps min and max via
        // XOR with e = (min ^ max) & dir.
        p.push(Instruction::And {
            rd: t,
            ra: i,
            rb: k,
        });
        p.push(Instruction::Sub {
            rd: dir,
            ra: Reg(0),
            rb: t,
        });
        p.push(Instruction::Srai {
            rd: dir,
            ra: dir,
            shamt: 31,
        });
        p.push(Instruction::Xor {
            rd: e,
            ra: min_v,
            rb: max_v,
        });
        p.push(Instruction::And {
            rd: e,
            ra: e,
            rb: dir,
        });
        p.push(Instruction::Xor {
            rd: v_i,
            ra: min_v,
            rb: e,
        });
        p.push(Instruction::Xor {
            rd: v_l,
            ra: max_v,
            rb: e,
        });
        p.push(Instruction::Sw {
            ra: ptr_i,
            rb: v_i,
            offset: 0,
        });
        p.push(Instruction::Sw {
            ra: ptr_l,
            rb: v_l,
            offset: 0,
        });
        p.bind(next);
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n_reg });
        p.branch_if_flag(i_loop);
        p.push(Instruction::Srli {
            rd: j,
            ra: j,
            shamt: 1,
        });
        p.push(Instruction::Sfne { ra: j, rb: Reg(0) });
        p.branch_if_flag(j_loop);
        p.push(Instruction::Slli {
            rd: k,
            ra: k,
            shamt: 1,
        });
        p.push(Instruction::Sfleu { ra: k, rb: n_reg });
        p.branch_if_flag(k_loop);
        let kernel_end = p.here();
        (p.build(), kernel_start..kernel_end)
    }
}

impl Benchmark for BitonicSortBenchmark {
    fn name(&self) -> &'static str {
        "bitonic_sort"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        self.values.len() + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        memory
            .write_block(Self::ARRAY_BASE, &self.values)
            .expect("data memory large enough");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let n = self.values.len();
        let got = memory.read_block(Self::ARRAY_BASE, n).ok()?;
        if got == self.golden_sorted() {
            return Some(0.0);
        }
        let pairs = (n * (n - 1) / 2) as f64;
        let inversions = (0..n)
            .flat_map(|x| ((x + 1)..n).map(move |y| (x, y)))
            .filter(|&(x, y)| got[x] > got[y])
            .count();
        // A sorted-but-wrong output (value corruption that happens to
        // preserve order) still scores the minimum nonzero error instead
        // of masquerading as correct.
        Some((inversions as f64 / pairs).max(1.0 / pairs))
    }

    fn error_metric(&self) -> &'static str {
        "normalized inversion count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_cpu::{Core, RunConfig};

    fn run(bench: &BitonicSortBenchmark) -> Core {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "outcome: {outcome:?}");
        core
    }

    #[test]
    fn fault_free_run_sorts() {
        for n in [4, 16, 64] {
            let bench = BitonicSortBenchmark::new(n, 13);
            let core = run(&bench);
            assert_eq!(bench.try_output_error(core.memory()), Some(0.0), "n = {n}");
            assert!(bench.is_correct(core.memory()));
            assert_eq!(
                core.memory().read_block(0, n).unwrap(),
                bench.golden_sorted()
            );
        }
    }

    #[test]
    fn exchanges_are_branch_free() {
        // The only flag-consuming branches are the three loop back-edges
        // and the pair guard — the compare-exchange itself never branches
        // on data, so two workloads of the same size execute the same
        // number of branches.
        let cycles = |seed| {
            let bench = BitonicSortBenchmark::new(32, seed);
            let core = run(&bench);
            (core.stats().cycles, core.stats().branches)
        };
        assert_eq!(cycles(1), cycles(2), "data-independent schedule");
    }

    #[test]
    fn inversion_count_scales_with_disorder() {
        let bench = BitonicSortBenchmark::new(16, 5);
        let mut core = run(&bench);
        let sorted = bench.golden_sorted();
        // Swap the extremes: 2n - 3 inversions out of n(n-1)/2.
        core.memory_mut().store_word(0, sorted[15]).unwrap();
        core.memory_mut().store_word(60, sorted[0]).unwrap();
        let big = bench.output_error(core.memory());
        // One adjacent swap: a single inversion.
        core.memory_mut().store_word(0, sorted[1]).unwrap();
        core.memory_mut().store_word(4, sorted[0]).unwrap();
        core.memory_mut().store_word(60, sorted[15]).unwrap();
        let small = bench.output_error(core.memory());
        assert!((small - 1.0 / 120.0).abs() < 1e-12);
        assert!(big > 10.0 * small);
    }

    #[test]
    fn sorted_but_wrong_values_are_not_correct() {
        let bench = BitonicSortBenchmark::new(8, 3);
        let mut core = run(&bench);
        // Corrupt every element to the same constant: perfectly sorted,
        // completely wrong.
        for x in 0..8u32 {
            core.memory_mut().store_word(4 * x, 5).unwrap();
        }
        let err = bench.output_error(core.memory());
        assert!(err > 0.0, "order-preserving corruption must not score 0");
        assert!(!bench.is_correct(core.memory()));
        assert_eq!(bench.error_metric(), "normalized inversion count");
        assert_eq!(bench.name(), "bitonic_sort");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        BitonicSortBenchmark::new(12, 0);
    }
}
