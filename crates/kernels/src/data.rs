//! Seeded workload-data generation shared by the benchmarks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `count` uniformly random values below `bound` from a seeded
/// generator (reproducible workloads).
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_values(count: usize, bound: u32, seed: u64) -> Vec<u32> {
    assert!(bound > 0, "bound must be non-zero");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(0..bound)).collect()
}

/// Generates a symmetric random weight matrix for a graph of `nodes` nodes,
/// with weights in `1..=max_weight` and zero diagonal.
///
/// # Panics
///
/// Panics if `nodes` is zero or `max_weight` is zero.
// Index loops express the symmetric fill more clearly than iterators.
#[allow(clippy::needless_range_loop)]
pub fn random_graph(nodes: usize, max_weight: u32, seed: u64) -> Vec<Vec<u32>> {
    assert!(nodes > 0, "graph must have at least one node");
    assert!(max_weight > 0, "max weight must be non-zero");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut matrix = vec![vec![0u32; nodes]; nodes];
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            let w = rng.gen_range(1..=max_weight);
            matrix[i][j] = w;
            matrix[j][i] = w;
        }
    }
    matrix
}

/// Generates `count` random 2-D points with coordinates below `bound`,
/// clustered around `clusters` well-separated centres so that the k-means
/// reference assignment is stable.
///
/// # Panics
///
/// Panics if `count`, `clusters` or `bound` is zero.
pub fn random_points(count: usize, clusters: usize, bound: u32, seed: u64) -> Vec<(u32, u32)> {
    assert!(
        count > 0 && clusters > 0 && bound > 0,
        "invalid point-generation parameters"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let spread = (bound / (4 * clusters as u32)).max(1);
    (0..count)
        .map(|i| {
            let c = (i % clusters) as u32;
            let centre = (bound / (clusters as u32 + 1)) * (c + 1);
            let dx = rng.gen_range(0..spread);
            let dy = rng.gen_range(0..spread);
            (centre + dx, centre + dy)
        })
        .collect()
}

/// Generates `count` uniformly random signed values in
/// `-magnitude..magnitude` from a seeded generator (fixed-point signal
/// workloads such as the FFT).
///
/// # Panics
///
/// Panics if `magnitude` is zero.
pub fn random_signed_values(count: usize, magnitude: i32, seed: u64) -> Vec<i32> {
    assert!(magnitude > 0, "magnitude must be non-zero");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| rng.gen_range(-magnitude..magnitude))
        .collect()
}

/// Generates `count` random 32-bit words over the full `u32` domain from a
/// seeded generator (bit-pattern workloads such as CRC32).
pub fn random_words(count: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen::<u32>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_reproducible_and_bounded() {
        let a = random_values(100, 1000, 7);
        let b = random_values(100, 1000, 7);
        let c = random_values(100, 1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| v < 1000));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn graph_is_symmetric_with_zero_diagonal() {
        let g = random_graph(10, 50, 3);
        for i in 0..10 {
            assert_eq!(g[i][i], 0);
            for j in 0..10 {
                assert_eq!(g[i][j], g[j][i]);
                if i != j {
                    assert!(g[i][j] >= 1 && g[i][j] <= 50);
                }
            }
        }
    }

    #[test]
    fn points_are_clustered() {
        let pts = random_points(8, 2, 256, 5);
        assert_eq!(pts.len(), 8);
        assert!(pts.iter().all(|&(x, y)| x < 256 && y < 256));
        // Points alternate between the two cluster centres; the first two
        // points belong to different clusters and are well separated.
        let d =
            (pts[0].0 as i64 - pts[1].0 as i64).abs() + (pts[0].1 as i64 - pts[1].1 as i64).abs();
        assert!(
            d > 30,
            "cluster centres should be separated, got distance {d}"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_panics() {
        random_values(10, 0, 0);
    }

    #[test]
    fn signed_values_are_reproducible_and_bounded() {
        let a = random_signed_values(200, 128, 11);
        let b = random_signed_values(200, 128, 11);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-128..128).contains(&v)));
        assert!(a.iter().any(|&v| v < 0), "both signs occur");
        assert!(a.iter().any(|&v| v > 0), "both signs occur");
    }

    #[test]
    fn words_cover_the_full_domain() {
        let a = random_words(64, 5);
        let b = random_words(64, 5);
        assert_eq!(a, b);
        assert_ne!(a, random_words(64, 6));
        assert!(
            a.iter().any(|&w| w > u32::MAX / 2),
            "full 32-bit range is exercised"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_magnitude_panics() {
        random_signed_values(4, 0, 0);
    }
}
