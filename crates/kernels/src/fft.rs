//! The radix-2 FFT benchmark: an in-place, fixed-point (Q14 twiddles)
//! decimation-in-time fast Fourier transform over complex integer data.
//!
//! A mix the paper suite lacks: multiplication-heavy like matmul, but with
//! signed arithmetic, arithmetic right shifts for rescaling, and a
//! data-independent butterfly schedule.  The error metric is SNR-style —
//! the energy of the deviation from the golden spectrum relative to the
//! energy of the golden spectrum itself — so a single flipped low-order
//! bit scores tiny while a corrupted exponent scores huge.

use crate::data::random_signed_values;
use crate::Benchmark;
use sfi_cpu::Memory;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Program, Reg};
use std::ops::Range;

/// Fractional bits of the twiddle factors.
pub const TWIDDLE_FRACTION_BITS: u32 = 14;

/// In-place radix-2 decimation-in-time FFT of `n` complex samples.
#[derive(Debug, Clone)]
pub struct FftBenchmark {
    n: usize,
    re: Vec<i32>,
    im: Vec<i32>,
    twiddles: Vec<(i32, i32)>,
    bit_reverse: Vec<u32>,
    program: Program,
    fi_window: Range<u32>,
}

impl FftBenchmark {
    /// Byte address of the real-part array.
    const RE_BASE: u32 = 0;

    /// Creates the benchmark for `n` complex points with seeded random
    /// 8-bit signed inputs.
    ///
    /// The input magnitude bound keeps every intermediate product inside
    /// 32-bit two's complement: per butterfly stage amplitudes grow by at
    /// most `1 + √2`, so for `n ≤ 128` the worst case stays below
    /// `2^17` and Q14 products below `2^31`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two in `4..=128`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(
            (4..=128).contains(&n) && n.is_power_of_two(),
            "FFT size must be a power of two in 4..=128, got {n}"
        );
        let re = random_signed_values(n, 128, seed);
        let im = random_signed_values(n, 128, seed.wrapping_add(1));
        let scale = (1i64 << TWIDDLE_FRACTION_BITS) as f64;
        let twiddles: Vec<(i32, i32)> = (0..n / 2)
            .map(|k| {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                (
                    (angle.cos() * scale).round() as i32,
                    (angle.sin() * scale).round() as i32,
                )
            })
            .collect();
        let log2n = n.trailing_zeros();
        let bit_reverse: Vec<u32> = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - log2n))
            .collect();
        let (program, fi_window) = Self::build_program(n);
        FftBenchmark {
            n,
            re,
            im,
            twiddles,
            bit_reverse,
            program,
            fi_window,
        }
    }

    fn im_base(&self) -> u32 {
        Self::RE_BASE + 4 * self.n as u32
    }

    fn twiddle_base(&self) -> u32 {
        Self::RE_BASE + 8 * self.n as u32
    }

    fn bit_reverse_base(&self) -> u32 {
        Self::RE_BASE + 12 * self.n as u32
    }

    /// The golden (fault-free) spectrum `(re, im)`, computed with the
    /// exact fixed-point arithmetic of the kernel (wrapping 32-bit
    /// multiplies, Q14 arithmetic-shift rescaling).
    pub fn golden_spectrum(&self) -> (Vec<i32>, Vec<i32>) {
        let n = self.n;
        let mut re = self.re.clone();
        let mut im = self.im.clone();
        for i in 0..n {
            let j = self.bit_reverse[i] as usize;
            if j > i {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut len = 2;
        let mut step = n / 2;
        while len <= n {
            let half = len / 2;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let (wr, wi) = self.twiddles[k * step];
                    let (i0, i1) = (start + k, start + k + half);
                    let tr = wr
                        .wrapping_mul(re[i1])
                        .wrapping_sub(wi.wrapping_mul(im[i1]))
                        >> TWIDDLE_FRACTION_BITS;
                    let ti = wr
                        .wrapping_mul(im[i1])
                        .wrapping_add(wi.wrapping_mul(re[i1]))
                        >> TWIDDLE_FRACTION_BITS;
                    re[i1] = re[i0].wrapping_sub(tr);
                    im[i1] = im[i0].wrapping_sub(ti);
                    re[i0] = re[i0].wrapping_add(tr);
                    im[i0] = im[i0].wrapping_add(ti);
                }
            }
            len *= 2;
            step /= 2;
        }
        (re, im)
    }

    fn build_program(n: usize) -> (Program, Range<u32>) {
        let mut p = ProgramBuilder::new();
        let (re_base, im_base, tw_base, br_base, n_reg) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        let (i, t, ptr, jj, pi, pj, t2, a, b) = (
            Reg(6),
            Reg(7),
            Reg(8),
            Reg(10),
            Reg(11),
            Reg(12),
            Reg(13),
            Reg(14),
            Reg(15),
        );
        let (len, half, step, start, kk) = (Reg(16), Reg(17), Reg(18), Reg(19), Reg(20));
        let (ptw, wr, wi, i0, i1) = (Reg(21), Reg(22), Reg(23), Reg(24), Reg(25));
        let (p1r, p1i, xr, xi, tr, ti) = (Reg(26), Reg(27), Reg(28), Reg(29), Reg(30), Reg(31));
        // The butterfly epilogue reuses the permutation scratch registers.
        let (p0r, p0i, yr, yi) = (pi, pj, t2, a);

        // Prologue (outside the FI window): base addresses and size.
        p.push(Instruction::Addi {
            rd: re_base,
            ra: Reg(0),
            imm: Self::RE_BASE as i16,
        });
        p.load_immediate(im_base, 4 * n as u32);
        p.load_immediate(tw_base, 8 * n as u32);
        p.load_immediate(br_base, 12 * n as u32);
        p.push(Instruction::Addi {
            rd: n_reg,
            ra: Reg(0),
            imm: n as i16,
        });
        let kernel_start = p.here();

        // ---------------- bit-reverse permutation ----------------
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let perm_loop = p.label();
        p.push(Instruction::Slli {
            rd: t,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: br_base,
            rb: t,
        });
        p.push(Instruction::Lwz {
            rd: jj,
            ra: ptr,
            offset: 0,
        });
        p.push(Instruction::Sfgtu { ra: jj, rb: i });
        let perm_next = p.forward_label();
        p.branch_if_not_flag(perm_next);
        p.push(Instruction::Slli {
            rd: t2,
            ra: jj,
            shamt: 2,
        });
        for base in [re_base, im_base] {
            p.push(Instruction::Add {
                rd: pi,
                ra: base,
                rb: t,
            });
            p.push(Instruction::Add {
                rd: pj,
                ra: base,
                rb: t2,
            });
            p.push(Instruction::Lwz {
                rd: a,
                ra: pi,
                offset: 0,
            });
            p.push(Instruction::Lwz {
                rd: b,
                ra: pj,
                offset: 0,
            });
            p.push(Instruction::Sw {
                ra: pi,
                rb: b,
                offset: 0,
            });
            p.push(Instruction::Sw {
                ra: pj,
                rb: a,
                offset: 0,
            });
        }
        p.bind(perm_next);
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n_reg });
        p.branch_if_flag(perm_loop);

        // ---------------- butterfly stages ----------------
        p.push(Instruction::Addi {
            rd: len,
            ra: Reg(0),
            imm: 2,
        });
        p.push(Instruction::Srli {
            rd: step,
            ra: n_reg,
            shamt: 1,
        });
        let stage_loop = p.label();
        p.push(Instruction::Srli {
            rd: half,
            ra: len,
            shamt: 1,
        });
        p.push(Instruction::Addi {
            rd: start,
            ra: Reg(0),
            imm: 0,
        });
        let start_loop = p.label();
        p.push(Instruction::Addi {
            rd: kk,
            ra: Reg(0),
            imm: 0,
        });
        let bf_loop = p.label();
        // Twiddle (wr, wi) at pair index kk * step.
        p.push(Instruction::Mul {
            rd: t,
            ra: kk,
            rb: step,
        });
        p.push(Instruction::Slli {
            rd: t,
            ra: t,
            shamt: 3,
        });
        p.push(Instruction::Add {
            rd: ptw,
            ra: tw_base,
            rb: t,
        });
        p.push(Instruction::Lwz {
            rd: wr,
            ra: ptw,
            offset: 0,
        });
        p.push(Instruction::Lwz {
            rd: wi,
            ra: ptw,
            offset: 4,
        });
        p.push(Instruction::Add {
            rd: i0,
            ra: start,
            rb: kk,
        });
        p.push(Instruction::Add {
            rd: i1,
            ra: i0,
            rb: half,
        });
        p.push(Instruction::Slli {
            rd: t,
            ra: i1,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: p1r,
            ra: re_base,
            rb: t,
        });
        p.push(Instruction::Add {
            rd: p1i,
            ra: im_base,
            rb: t,
        });
        p.push(Instruction::Lwz {
            rd: xr,
            ra: p1r,
            offset: 0,
        });
        p.push(Instruction::Lwz {
            rd: xi,
            ra: p1i,
            offset: 0,
        });
        // tr = (wr·xr - wi·xi) >> 14, ti = (wr·xi + wi·xr) >> 14
        p.push(Instruction::Mul {
            rd: a,
            ra: wr,
            rb: xr,
        });
        p.push(Instruction::Mul {
            rd: b,
            ra: wi,
            rb: xi,
        });
        p.push(Instruction::Sub {
            rd: a,
            ra: a,
            rb: b,
        });
        p.push(Instruction::Srai {
            rd: tr,
            ra: a,
            shamt: TWIDDLE_FRACTION_BITS as u8,
        });
        p.push(Instruction::Mul {
            rd: a,
            ra: wr,
            rb: xi,
        });
        p.push(Instruction::Mul {
            rd: b,
            ra: wi,
            rb: xr,
        });
        p.push(Instruction::Add {
            rd: a,
            ra: a,
            rb: b,
        });
        p.push(Instruction::Srai {
            rd: ti,
            ra: a,
            shamt: TWIDDLE_FRACTION_BITS as u8,
        });
        p.push(Instruction::Slli {
            rd: t,
            ra: i0,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: p0r,
            ra: re_base,
            rb: t,
        });
        p.push(Instruction::Add {
            rd: p0i,
            ra: im_base,
            rb: t,
        });
        p.push(Instruction::Lwz {
            rd: yr,
            ra: p0r,
            offset: 0,
        });
        p.push(Instruction::Lwz {
            rd: yi,
            ra: p0i,
            offset: 0,
        });
        p.push(Instruction::Sub {
            rd: b,
            ra: yr,
            rb: tr,
        });
        p.push(Instruction::Sw {
            ra: p1r,
            rb: b,
            offset: 0,
        });
        p.push(Instruction::Sub {
            rd: b,
            ra: yi,
            rb: ti,
        });
        p.push(Instruction::Sw {
            ra: p1i,
            rb: b,
            offset: 0,
        });
        p.push(Instruction::Add {
            rd: b,
            ra: yr,
            rb: tr,
        });
        p.push(Instruction::Sw {
            ra: p0r,
            rb: b,
            offset: 0,
        });
        p.push(Instruction::Add {
            rd: b,
            ra: yi,
            rb: ti,
        });
        p.push(Instruction::Sw {
            ra: p0i,
            rb: b,
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: kk,
            ra: kk,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: kk, rb: half });
        p.branch_if_flag(bf_loop);
        p.push(Instruction::Add {
            rd: start,
            ra: start,
            rb: len,
        });
        p.push(Instruction::Sfltu {
            ra: start,
            rb: n_reg,
        });
        p.branch_if_flag(start_loop);
        p.push(Instruction::Slli {
            rd: len,
            ra: len,
            shamt: 1,
        });
        p.push(Instruction::Srli {
            rd: step,
            ra: step,
            shamt: 1,
        });
        p.push(Instruction::Sfleu { ra: len, rb: n_reg });
        p.branch_if_flag(stage_loop);
        let kernel_end = p.here();
        (p.build(), kernel_start..kernel_end)
    }
}

impl Benchmark for FftBenchmark {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.fi_window.clone()
    }

    fn dmem_words(&self) -> usize {
        4 * self.n + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        let as_words = |v: &[i32]| v.iter().map(|&x| x as u32).collect::<Vec<u32>>();
        memory
            .write_block(Self::RE_BASE, &as_words(&self.re))
            .expect("data memory large enough");
        memory
            .write_block(self.im_base(), &as_words(&self.im))
            .expect("data memory large enough");
        let tw: Vec<u32> = self
            .twiddles
            .iter()
            .flat_map(|&(wr, wi)| [wr as u32, wi as u32])
            .collect();
        memory
            .write_block(self.twiddle_base(), &tw)
            .expect("data memory large enough");
        memory
            .write_block(self.bit_reverse_base(), &self.bit_reverse)
            .expect("data memory large enough");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let (golden_re, golden_im) = self.golden_spectrum();
        let got_re = memory.read_block(Self::RE_BASE, self.n).ok()?;
        let got_im = memory.read_block(self.im_base(), self.n).ok()?;
        let mut noise = 0.0f64;
        let mut signal = 0.0f64;
        for i in 0..self.n {
            let dr = golden_re[i] as f64 - (got_re[i] as i32) as f64;
            let di = golden_im[i] as f64 - (got_im[i] as i32) as f64;
            noise += dr * dr + di * di;
            signal += golden_re[i] as f64 * golden_re[i] as f64
                + golden_im[i] as f64 * golden_im[i] as f64;
        }
        Some(noise / signal.max(1.0))
    }

    fn error_metric(&self) -> &'static str {
        "noise-to-signal energy ratio"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_cpu::{Core, RunConfig};

    fn run(bench: &FftBenchmark) -> Core {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "outcome: {outcome:?}");
        core
    }

    #[test]
    fn fault_free_run_matches_golden() {
        for n in [4, 16, 64, 128] {
            let bench = FftBenchmark::new(n, 17);
            let core = run(&bench);
            assert_eq!(bench.try_output_error(core.memory()), Some(0.0), "n = {n}");
            assert!(bench.is_correct(core.memory()));
            let (golden_re, _) = bench.golden_spectrum();
            let got: Vec<i32> = core
                .memory()
                .read_block(0, n)
                .unwrap()
                .into_iter()
                .map(|w| w as i32)
                .collect();
            assert_eq!(got, golden_re);
        }
    }

    #[test]
    fn spectrum_matches_a_float_dft() {
        // The fixed-point spectrum must track an independent O(n²) DFT to
        // within the Q14 rounding budget.
        let n = 16;
        let bench = FftBenchmark::new(n, 3);
        let (got_re, got_im) = bench.golden_spectrum();
        for k in 0..n {
            let (mut sr, mut si) = (0.0f64, 0.0f64);
            for (t, (&xr, &xi)) in bench.re.iter().zip(&bench.im).enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (c, s) = (angle.cos(), angle.sin());
                sr += xr as f64 * c - xi as f64 * s;
                si += xr as f64 * s + xi as f64 * c;
            }
            // Per-stage truncation: a loose but safe tolerance.
            assert!(
                (got_re[k] as f64 - sr).abs() < 64.0,
                "bin {k}: {} vs {sr}",
                got_re[k]
            );
            assert!(
                (got_im[k] as f64 - si).abs() < 64.0,
                "bin {k}: {} vs {si}",
                got_im[k]
            );
        }
    }

    #[test]
    fn kernel_mixes_multiplications_and_control() {
        let bench = FftBenchmark::new(64, 1);
        let core = run(&bench);
        let stats = core.stats();
        assert!(
            stats.multiplications > 4 * 32 * 6,
            "four Q14 products per butterfly"
        );
        assert!(stats.control_fraction() > 0.02, "loop back-edges retire");
        assert!(stats.compute_fraction() > 0.3);
    }

    #[test]
    fn snr_metric_weights_energy_not_count() {
        let bench = FftBenchmark::new(16, 9);
        let mut core = run(&bench);
        let golden = core.memory().load_word(0).unwrap();
        core.memory_mut()
            .store_word(0, (golden as i32 + 1) as u32)
            .unwrap();
        let tiny = bench.output_error(core.memory());
        core.memory_mut()
            .store_word(0, (golden as i32 + 4096) as u32)
            .unwrap();
        let huge = bench.output_error(core.memory());
        assert!(tiny > 0.0);
        assert!(huge > tiny * 1000.0);
        assert!(!bench.is_correct(core.memory()));
        assert_eq!(bench.error_metric(), "noise-to-signal energy ratio");
        assert_eq!(bench.name(), "fft");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_size_panics() {
        FftBenchmark::new(24, 0);
    }
}
