//! Per-run execution statistics.

use sfi_isa::{AluClass, InstructionKind};

/// Statistics collected over one program run.
///
/// The FI-rate metric of the paper ("faults per 1000 cycles of kernel
/// execution") is derived from [`RunStats::injected_faults`] and
/// [`RunStats::kernel_cycles`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total simulated cycles (including pipeline penalties).
    pub cycles: u64,
    /// Cycles spent inside the kernel window (where FI is enabled).
    pub kernel_cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Retired instructions that activate the execution-stage ALU.
    pub alu_instructions: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired conditional branches.
    pub branches: u64,
    /// Retired taken conditional branches.
    pub taken_branches: u64,
    /// Retired unconditional jumps.
    pub jumps: u64,
    /// Retired no-ops.
    pub nops: u64,
    /// Number of faults injected (cycles where at least one endpoint bit
    /// was flipped).
    pub injected_faults: u64,
    /// Total number of endpoint bits flipped.
    pub flipped_bits: u64,
    /// Retired multiplications (the most timing-critical instruction class).
    pub multiplications: u64,
    /// Retired set-flag comparisons.
    pub comparisons: u64,
}

impl RunStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired instruction of the given kind/class.
    pub fn record_instruction(&mut self, kind: InstructionKind, alu_class: Option<AluClass>) {
        self.instructions += 1;
        match kind {
            InstructionKind::Alu => self.alu_instructions += 1,
            InstructionKind::Load => self.loads += 1,
            InstructionKind::Store => self.stores += 1,
            InstructionKind::Branch => self.branches += 1,
            InstructionKind::Jump => self.jumps += 1,
            InstructionKind::Nop => self.nops += 1,
        }
        match alu_class {
            Some(AluClass::Mul) => self.multiplications += 1,
            Some(c) if c.is_set_flag() => self.comparisons += 1,
            _ => {}
        }
    }

    /// Records an injected fault with the given number of flipped bits.
    pub fn record_fault(&mut self, flipped_bits: u32) {
        if flipped_bits > 0 {
            self.injected_faults += 1;
            self.flipped_bits += u64::from(flipped_bits.count_ones());
        }
    }

    /// Fault-injection rate in faults per 1000 kernel cycles (the unit used
    /// throughout the paper's figures).  Returns 0 if no kernel cycles were
    /// executed.
    pub fn fi_rate_per_kcycle(&self) -> f64 {
        if self.kernel_cycles == 0 {
            0.0
        } else {
            self.injected_faults as f64 * 1000.0 / self.kernel_cycles as f64
        }
    }

    /// Instructions per cycle achieved by the run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of retired instructions that are ALU (compute) instructions.
    pub fn compute_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.alu_instructions as f64 / self.instructions as f64
        }
    }

    /// Fraction of retired instructions that are control flow (branches and
    /// jumps).
    pub fn control_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.branches + self.jumps) as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = RunStats::new();
        s.record_instruction(InstructionKind::Alu, Some(AluClass::Mul));
        s.record_instruction(InstructionKind::Alu, Some(AluClass::SfEq));
        s.record_instruction(InstructionKind::Load, None);
        s.record_instruction(InstructionKind::Store, None);
        s.record_instruction(InstructionKind::Branch, None);
        s.record_instruction(InstructionKind::Jump, None);
        s.record_instruction(InstructionKind::Nop, None);
        assert_eq!(s.instructions, 7);
        assert_eq!(s.alu_instructions, 2);
        assert_eq!(s.multiplications, 1);
        assert_eq!(s.comparisons, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.jumps, 1);
        assert_eq!(s.nops, 1);
    }

    #[test]
    fn fault_accounting_and_rates() {
        let mut s = RunStats::new();
        s.kernel_cycles = 2000;
        s.cycles = 2500;
        s.record_fault(0b101);
        s.record_fault(0);
        s.record_fault(0b1);
        assert_eq!(s.injected_faults, 2);
        assert_eq!(s.flipped_bits, 3);
        assert!((s.fi_rate_per_kcycle() - 1.0).abs() < 1e-12);
        s.instructions = 2000;
        s.alu_instructions = 1000;
        s.branches = 200;
        s.jumps = 100;
        assert!((s.ipc() - 0.8).abs() < 1e-12);
        assert!((s.compute_fraction() - 0.5).abs() < 1e-12);
        assert!((s.control_fraction() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = RunStats::new();
        assert_eq!(s.fi_rate_per_kcycle(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.compute_fraction(), 0.0);
        assert_eq!(s.control_fraction(), 0.0);
    }
}
