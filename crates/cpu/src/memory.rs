//! Word-addressed data memory (single-cycle SRAM macro model).

use std::fmt;

/// The data memory of the core: a flat array of 32-bit words with
/// single-cycle access, mirroring the SRAM macros of the case-study chip.
///
/// Addresses are byte addresses (as produced by address arithmetic in the
/// kernels) but must be word-aligned.
///
/// # Example
///
/// ```
/// use sfi_cpu::Memory;
///
/// let mut mem = Memory::new(256);
/// mem.store_word(8, 0xDEAD_BEEF)?;
/// assert_eq!(mem.load_word(8)?, 0xDEAD_BEEF);
/// # Ok::<(), sfi_cpu::memory::MemoryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    words: Vec<u32>,
}

/// Error raised by an out-of-range or misaligned access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryError {
    /// The offending byte address.
    pub address: u32,
    /// Whether the access was a store.
    pub is_store: bool,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} at byte address {:#010x}",
            if self.is_store { "store" } else { "load" },
            self.address
        )
    }
}

impl std::error::Error for MemoryError {}

impl Memory {
    /// Creates a zero-initialized memory of `words` 32-bit words.
    pub fn new(words: usize) -> Self {
        Memory {
            words: vec![0; words],
        }
    }

    /// Size of the memory in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size of the memory in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Resets every word to zero without reallocating — equivalent to a
    /// freshly constructed memory of the same size.  The Monte-Carlo
    /// harness uses this to recycle one memory across trials.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    fn word_index(&self, address: u32, is_store: bool) -> Result<usize, MemoryError> {
        if !address.is_multiple_of(4) {
            return Err(MemoryError { address, is_store });
        }
        let index = (address / 4) as usize;
        if index >= self.words.len() {
            return Err(MemoryError { address, is_store });
        }
        Ok(index)
    }

    /// Loads the word at byte address `address`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if the address is misaligned or out of range.
    pub fn load_word(&self, address: u32) -> Result<u32, MemoryError> {
        Ok(self.words[self.word_index(address, false)?])
    }

    /// Stores `value` at byte address `address`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if the address is misaligned or out of range.
    pub fn store_word(&mut self, address: u32, value: u32) -> Result<(), MemoryError> {
        let index = self.word_index(address, true)?;
        self.words[index] = value;
        Ok(())
    }

    /// Bulk-writes `values` starting at byte address `address` (used by the
    /// experiment harness to place kernel input data).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if any written word would fall outside the
    /// memory.
    pub fn write_block(&mut self, address: u32, values: &[u32]) -> Result<(), MemoryError> {
        for (i, &v) in values.iter().enumerate() {
            self.store_word(address + 4 * i as u32, v)?;
        }
        Ok(())
    }

    /// Bulk-reads `count` words starting at byte address `address` (used by
    /// the harness to extract kernel output data).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if any read word would fall outside the
    /// memory.
    pub fn read_block(&self, address: u32, count: usize) -> Result<Vec<u32>, MemoryError> {
        (0..count)
            .map(|i| self.load_word(address + 4 * i as u32))
            .collect()
    }

    /// Direct view of the backing words (mainly for tests and metrics).
    pub fn words(&self) -> &[u32] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut m = Memory::new(16);
        assert_eq!(m.len(), 16);
        assert_eq!(m.size_bytes(), 64);
        assert!(!m.is_empty());
        m.store_word(0, 1).unwrap();
        m.store_word(60, 0xFFFF_FFFF).unwrap();
        assert_eq!(m.load_word(0).unwrap(), 1);
        assert_eq!(m.load_word(60).unwrap(), 0xFFFF_FFFF);
        assert_eq!(m.load_word(4).unwrap(), 0);
    }

    #[test]
    fn misaligned_and_out_of_range() {
        let mut m = Memory::new(4);
        assert!(m.load_word(2).is_err());
        assert!(m.store_word(17, 1).is_err());
        assert!(m.load_word(16).is_err());
        let err = m.store_word(100, 0).unwrap_err();
        assert!(err.is_store);
        assert_eq!(err.address, 100);
        assert!(err.to_string().contains("store"));
        let err = m.load_word(100).unwrap_err();
        assert!(!err.is_store);
    }

    #[test]
    fn clear_zeroes_without_resizing() {
        let mut m = Memory::new(8);
        m.store_word(4, 7).unwrap();
        m.clear();
        assert_eq!(m.len(), 8);
        assert_eq!(m.load_word(4).unwrap(), 0);
        assert_eq!(m, Memory::new(8));
    }

    #[test]
    fn block_transfers() {
        let mut m = Memory::new(32);
        m.write_block(8, &[10, 20, 30]).unwrap();
        assert_eq!(m.read_block(8, 3).unwrap(), vec![10, 20, 30]);
        assert_eq!(m.words()[2..5], [10, 20, 30]);
        assert!(m.write_block(120, &[1, 2, 3]).is_err());
        assert!(m.read_block(120, 3).is_err());
    }
}
