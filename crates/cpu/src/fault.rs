//! The execution-stage fault-injection hook.
//!
//! The paper injects timing-error faults exclusively into the 32 ALU
//! endpoint flip-flops of the execution stage, conditioned on the
//! instruction currently occupying that stage.  [`FaultInjector`] is the
//! corresponding hook: the ISS calls it once per ALU-instruction cycle with
//! the full micro-architectural context and XORs the returned mask into the
//! freshly computed result before write-back.

use sfi_isa::AluClass;

/// Everything the fault model may condition an injection on for one
/// execution-stage cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExStageContext {
    /// Cycle counter at the time the instruction is in the execution stage.
    pub cycle: u64,
    /// The ALU operation occupying the stage.
    pub alu_class: AluClass,
    /// First ALU operand.
    pub operand_a: u32,
    /// Second ALU operand (immediate operands are presented here as well,
    /// after extension, exactly as the datapath sees them).
    pub operand_b: u32,
    /// The fault-free result the ALU computed this cycle (for set-flag
    /// operations bit 0 holds the flag).
    pub result: u32,
    /// Whether fault injection is currently enabled (the ISS only enables
    /// it inside the benchmark's kernel window).
    pub fi_enabled: bool,
}

/// A model deciding which execution-stage endpoint bits to flip each cycle.
///
/// Implementations live in the `sfi-fault` crate (models A, B, B+ and C of
/// the paper); the trivial [`NoFaultInjector`] is provided here for
/// fault-free golden runs.
pub trait FaultInjector {
    /// Returns the bit mask to XOR into the execution-stage result register
    /// for this cycle (0 = no fault).
    ///
    /// The ISS calls this for every cycle in which an ALU instruction
    /// occupies the execution stage, including cycles outside the kernel
    /// window (with `ctx.fi_enabled == false`) so that models can keep
    /// cycle-aligned internal state such as per-cycle supply-noise samples.
    fn inject(&mut self, ctx: &ExStageContext) -> u32;

    /// Called once when a program run starts, so stateful models can reset
    /// per-run state (e.g. noise sequences) while keeping their expensive
    /// characterization data.
    fn begin_run(&mut self) {}
}

/// A fault injector that never injects anything (golden runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaultInjector;

impl FaultInjector for NoFaultInjector {
    fn inject(&mut self, _ctx: &ExStageContext) -> u32 {
        0
    }
}

impl<T: FaultInjector + ?Sized> FaultInjector for &mut T {
    fn inject(&mut self, ctx: &ExStageContext) -> u32 {
        (**self).inject(ctx)
    }

    fn begin_run(&mut self) {
        (**self).begin_run();
    }
}

impl<T: FaultInjector + ?Sized> FaultInjector for Box<T> {
    fn inject(&mut self, ctx: &ExStageContext) -> u32 {
        (**self).inject(ctx)
    }

    fn begin_run(&mut self) {
        (**self).begin_run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlipLsbInKernel;

    impl FaultInjector for FlipLsbInKernel {
        fn inject(&mut self, ctx: &ExStageContext) -> u32 {
            if ctx.fi_enabled {
                1
            } else {
                0
            }
        }
    }

    fn ctx(fi_enabled: bool) -> ExStageContext {
        ExStageContext {
            cycle: 10,
            alu_class: AluClass::Add,
            operand_a: 1,
            operand_b: 2,
            result: 3,
            fi_enabled,
        }
    }

    #[test]
    fn no_fault_injector_returns_zero() {
        let mut inj = NoFaultInjector;
        assert_eq!(inj.inject(&ctx(true)), 0);
        inj.begin_run();
    }

    #[test]
    fn trait_objects_and_references_work() {
        let mut inj = FlipLsbInKernel;
        assert_eq!(inj.inject(&ctx(true)), 1);
        assert_eq!(inj.inject(&ctx(false)), 0);
        let mut dynamic: &mut dyn FaultInjector = &mut inj;
        assert_eq!(FaultInjector::inject(&mut dynamic, &ctx(true)), 1);
        FaultInjector::begin_run(&mut dynamic);
        let mut boxed: Box<dyn FaultInjector> = Box::new(FlipLsbInKernel);
        assert_eq!(boxed.inject(&ctx(true)), 1);
        boxed.begin_run();
    }
}
