//! The cycle-accurate core model and its run loop.

use crate::fault::{ExStageContext, FaultInjector, NoFaultInjector};
use crate::memory::{Memory, MemoryError};
use crate::state::CpuState;
use crate::stats::RunStats;
use sfi_isa::{AluClass, Instruction, Program, Reg};
use std::ops::Range;
use std::sync::Arc;

/// Run-control parameters of the ISS.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Watchdog limit: the run is aborted as an obvious fatal error once
    /// this many cycles have been simulated (the paper's "basic infinite
    /// loop detection").
    pub max_cycles: u64,
    /// Program-counter window (in instruction words) in which fault
    /// injection is enabled.  `None` enables it for the whole program.
    /// The paper restricts FI to the kernel part of each benchmark.
    pub fi_window: Option<Range<u32>>,
    /// Extra cycles charged for every taken branch or jump (pipeline
    /// refill of the 6-stage core).
    pub branch_penalty: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_cycles: 10_000_000,
            fi_window: None,
            branch_penalty: 2,
        }
    }
}

/// How a program run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The program ran off its last instruction (normal completion).
    Finished {
        /// Total simulated cycles.
        cycles: u64,
    },
    /// The watchdog limit was reached (infinite loop / fatal error).
    Watchdog {
        /// Cycles simulated before the abort.
        cycles: u64,
    },
    /// A load or store accessed an invalid address (typically caused by a
    /// corrupted address computation).
    MemoryFault {
        /// Cycles simulated before the abort.
        cycles: u64,
        /// The offending access.
        error: MemoryError,
    },
    /// Control flow left the program (corrupted branch or jump target).
    InvalidPc {
        /// Cycles simulated before the abort.
        cycles: u64,
        /// The invalid program counter value.
        pc: u32,
    },
}

impl RunOutcome {
    /// Whether the program completed normally.
    pub fn finished(&self) -> bool {
        matches!(self, RunOutcome::Finished { .. })
    }

    /// The number of cycles simulated before the run ended.
    pub fn cycles(&self) -> u64 {
        match self {
            RunOutcome::Finished { cycles }
            | RunOutcome::Watchdog { cycles }
            | RunOutcome::MemoryFault { cycles, .. }
            | RunOutcome::InvalidPc { cycles, .. } => *cycles,
        }
    }
}

/// The simulated core: program, architectural state, data memory and
/// statistics.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Core {
    program: Arc<Program>,
    state: CpuState,
    memory: Memory,
    stats: RunStats,
}

impl Core {
    /// Creates a core with the given program and a zeroed data memory of
    /// `dmem_words` words.
    ///
    /// The program is held behind an `Arc`, so passing `Arc<Program>`
    /// shares the instruction memory with other cores (the Monte-Carlo
    /// harness reuses one program across all trials of a benchmark);
    /// passing a plain [`Program`] still works and wraps it on the spot.
    pub fn new(program: impl Into<Arc<Program>>, dmem_words: usize) -> Self {
        Core {
            program: program.into(),
            state: CpuState::new(),
            memory: Memory::new(dmem_words),
            stats: RunStats::new(),
        }
    }

    /// The architectural state (registers, flag, PC).
    pub fn state(&self) -> &CpuState {
        &self.state
    }

    /// The data memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the data memory, used by the experiment harness to
    /// place input data before a run and to read results afterwards.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Mutable access to the architectural state, used by the ISA
    /// conformance suite to establish a row's pre-state (registers, flag)
    /// before running a table fragment.
    pub fn state_mut(&mut self) -> &mut CpuState {
        &mut self.state
    }

    /// The program loaded into the instruction memory.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Execution statistics of the last (or ongoing) run.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Resets the architectural state and statistics (the data memory is
    /// left untouched so pre-loaded input data survives).
    pub fn reset(&mut self) {
        self.state = CpuState::new();
        self.stats = RunStats::new();
    }

    /// Resets the architectural state, statistics *and* data memory — the
    /// state of a freshly constructed core, without reallocating.  The
    /// Monte-Carlo harness uses this to recycle one core across trials.
    pub fn reset_full(&mut self) {
        self.reset();
        self.memory.clear();
    }

    /// Runs the program to completion without fault injection.
    pub fn run(&mut self, config: &RunConfig) -> RunOutcome {
        self.run_with_injector(config, &mut NoFaultInjector)
    }

    /// Runs the program to completion, consulting `injector` on every cycle
    /// in which an ALU instruction occupies the execution stage.
    pub fn run_with_injector<F: FaultInjector + ?Sized>(
        &mut self,
        config: &RunConfig,
        injector: &mut F,
    ) -> RunOutcome {
        injector.begin_run();
        loop {
            if self.state.pc as usize == self.program.len() {
                return RunOutcome::Finished {
                    cycles: self.stats.cycles,
                };
            }
            // The watchdog is checked before the fetch: once the cycle
            // budget is exhausted no more work happens — not even an
            // instruction fetch — and an exhausted budget at a corrupted
            // PC reports `Watchdog`, not `InvalidPc`.
            if self.stats.cycles >= config.max_cycles {
                return RunOutcome::Watchdog {
                    cycles: self.stats.cycles,
                };
            }
            let Some(instruction) = self.program.fetch(self.state.pc) else {
                return RunOutcome::InvalidPc {
                    cycles: self.stats.cycles,
                    pc: self.state.pc,
                };
            };
            if let Err(error) = self.step(instruction, config, injector) {
                return RunOutcome::MemoryFault {
                    cycles: self.stats.cycles,
                    error,
                };
            }
        }
    }

    fn fi_enabled(&self, config: &RunConfig) -> bool {
        config
            .fi_window
            .as_ref()
            .is_none_or(|w| w.contains(&self.state.pc))
    }

    fn step<F: FaultInjector + ?Sized>(
        &mut self,
        instruction: Instruction,
        config: &RunConfig,
        injector: &mut F,
    ) -> Result<(), MemoryError> {
        use Instruction::*;
        let fi_enabled = self.fi_enabled(config);
        let mut cycles_this_instruction = 1u64;
        let mut next_pc = self.state.pc.wrapping_add(1);

        match instruction {
            // --- ALU instructions (subject to fault injection) -----------
            _ if instruction.is_alu() => {
                let (class, a, b) = self.alu_operands(instruction);
                let golden = Self::alu_result(class, a, b);
                let ctx = ExStageContext {
                    cycle: self.stats.cycles,
                    alu_class: class,
                    operand_a: a,
                    operand_b: b,
                    result: golden,
                    fi_enabled,
                };
                let mask = injector.inject(&ctx);
                let mask = if fi_enabled { mask } else { 0 };
                if fi_enabled {
                    self.stats.record_fault(mask);
                }
                let result = golden ^ mask;
                if instruction.writes_flag() {
                    self.state.flag = result & 1 == 1;
                } else if let Some(rd) = instruction.destination() {
                    self.state.set_reg(rd, result);
                }
            }
            // --- Memory ----------------------------------------------------
            Lwz { rd, ra, offset } => {
                let address = self.state.reg(ra).wrapping_add(offset as i32 as u32);
                let value = self.memory.load_word(address)?;
                self.state.set_reg(rd, value);
            }
            Sw { ra, rb, offset } => {
                let address = self.state.reg(ra).wrapping_add(offset as i32 as u32);
                self.memory.store_word(address, self.state.reg(rb))?;
            }
            // --- Control flow ----------------------------------------------
            Bf { offset } => {
                self.stats.taken_branches += self.state.flag as u64;
                if self.state.flag {
                    next_pc = Self::relative_target(self.state.pc, offset);
                    cycles_this_instruction += config.branch_penalty;
                }
            }
            Bnf { offset } => {
                self.stats.taken_branches += (!self.state.flag) as u64;
                if !self.state.flag {
                    next_pc = Self::relative_target(self.state.pc, offset);
                    cycles_this_instruction += config.branch_penalty;
                }
            }
            J { offset } => {
                next_pc = Self::relative_target(self.state.pc, offset);
                cycles_this_instruction += config.branch_penalty;
            }
            Jal { offset } => {
                self.state
                    .set_reg(Instruction::LINK_REGISTER, self.state.pc.wrapping_add(1));
                next_pc = Self::relative_target(self.state.pc, offset);
                cycles_this_instruction += config.branch_penalty;
            }
            Jr { ra } => {
                next_pc = self.state.reg(ra);
                cycles_this_instruction += config.branch_penalty;
            }
            Nop => {}
            // All ALU instructions are handled by the guard arm above.
            _ => unreachable!("non-ALU instruction not covered: {instruction}"),
        }

        self.stats
            .record_instruction(instruction.kind(), instruction.alu_class());
        self.stats.cycles += cycles_this_instruction;
        if fi_enabled {
            self.stats.kernel_cycles += cycles_this_instruction;
        }
        self.state.pc = next_pc;
        Ok(())
    }

    fn relative_target(pc: u32, offset: i32) -> u32 {
        (pc as i64 + 1 + offset as i64) as u32
    }

    /// The (class, operand A, operand B) triple the execution-stage
    /// datapath sees for an ALU instruction.
    fn alu_operands(&self, instruction: Instruction) -> (AluClass, u32, u32) {
        use Instruction::*;
        let r = |reg: Reg| self.state.reg(reg);
        match instruction {
            Add { ra, rb, .. } => (AluClass::Add, r(ra), r(rb)),
            Sub { ra, rb, .. } => (AluClass::Sub, r(ra), r(rb)),
            And { ra, rb, .. } => (AluClass::And, r(ra), r(rb)),
            Or { ra, rb, .. } => (AluClass::Or, r(ra), r(rb)),
            Xor { ra, rb, .. } => (AluClass::Xor, r(ra), r(rb)),
            Mul { ra, rb, .. } => (AluClass::Mul, r(ra), r(rb)),
            Sll { ra, rb, .. } => (AluClass::Sll, r(ra), r(rb)),
            Srl { ra, rb, .. } => (AluClass::Srl, r(ra), r(rb)),
            Sra { ra, rb, .. } => (AluClass::Sra, r(ra), r(rb)),
            Addi { ra, imm, .. } => (AluClass::Add, r(ra), imm as i32 as u32),
            Andi { ra, imm, .. } => (AluClass::And, r(ra), imm as u32),
            Ori { ra, imm, .. } => (AluClass::Or, r(ra), imm as u32),
            Xori { ra, imm, .. } => (AluClass::Xor, r(ra), imm as u32),
            Muli { ra, imm, .. } => (AluClass::Mul, r(ra), imm as i32 as u32),
            Slli { ra, shamt, .. } => (AluClass::Sll, r(ra), shamt as u32),
            Srli { ra, shamt, .. } => (AluClass::Srl, r(ra), shamt as u32),
            Srai { ra, shamt, .. } => (AluClass::Sra, r(ra), shamt as u32),
            Movhi { imm, .. } => (AluClass::Or, 0, (imm as u32) << 16),
            Sfeq { ra, rb } => (AluClass::SfEq, r(ra), r(rb)),
            Sfne { ra, rb } => (AluClass::SfNe, r(ra), r(rb)),
            Sfltu { ra, rb } => (AluClass::SfLtu, r(ra), r(rb)),
            Sfgeu { ra, rb } => (AluClass::SfGeu, r(ra), r(rb)),
            // Swapped-operand comparisons reuse the same datapath operation.
            Sfgtu { ra, rb } => (AluClass::SfLtu, r(rb), r(ra)),
            Sfleu { ra, rb } => (AluClass::SfGeu, r(rb), r(ra)),
            Sflts { ra, rb } => (AluClass::SfLts, r(ra), r(rb)),
            Sfges { ra, rb } => (AluClass::SfGes, r(ra), r(rb)),
            Sfgts { ra, rb } => (AluClass::SfLts, r(rb), r(ra)),
            Sfles { ra, rb } => (AluClass::SfGes, r(rb), r(ra)),
            _ => unreachable!("not an ALU instruction: {instruction}"),
        }
    }

    /// Fault-free result of an execution-stage operation.
    pub fn alu_result(class: AluClass, a: u32, b: u32) -> u32 {
        match class {
            AluClass::Add => a.wrapping_add(b),
            AluClass::Sub => a.wrapping_sub(b),
            AluClass::And => a & b,
            AluClass::Or => a | b,
            AluClass::Xor => a ^ b,
            AluClass::Sll => a.wrapping_shl(b & 31),
            AluClass::Srl => a.wrapping_shr(b & 31),
            AluClass::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluClass::Mul => a.wrapping_mul(b),
            AluClass::SfEq => (a == b) as u32,
            AluClass::SfNe => (a != b) as u32,
            AluClass::SfLtu => (a < b) as u32,
            AluClass::SfGeu => (a >= b) as u32,
            AluClass::SfLts => ((a as i32) < (b as i32)) as u32,
            AluClass::SfGes => ((a as i32) >= (b as i32)) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_isa::program::ProgramBuilder;

    fn run_program(p: ProgramBuilder) -> (Core, RunOutcome) {
        let mut core = Core::new(p.build(), 256);
        let outcome = core.run(&RunConfig::default());
        (core, outcome)
    }

    #[test]
    fn arithmetic_and_immediates() {
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Addi {
            rd: Reg(1),
            ra: Reg(0),
            imm: 100,
        });
        p.push(Instruction::Addi {
            rd: Reg(2),
            ra: Reg(0),
            imm: -3,
        });
        p.push(Instruction::Add {
            rd: Reg(3),
            ra: Reg(1),
            rb: Reg(2),
        });
        p.push(Instruction::Mul {
            rd: Reg(4),
            ra: Reg(3),
            rb: Reg(1),
        });
        p.push(Instruction::Sub {
            rd: Reg(5),
            ra: Reg(4),
            rb: Reg(3),
        });
        p.push(Instruction::Xori {
            rd: Reg(6),
            ra: Reg(5),
            imm: 0xFF,
        });
        p.push(Instruction::Slli {
            rd: Reg(7),
            ra: Reg(1),
            shamt: 4,
        });
        p.push(Instruction::Srai {
            rd: Reg(8),
            ra: Reg(2),
            shamt: 1,
        });
        let (core, outcome) = run_program(p);
        assert!(outcome.finished());
        assert_eq!(core.state().reg(Reg(3)), 97);
        assert_eq!(core.state().reg(Reg(4)), 9700);
        assert_eq!(core.state().reg(Reg(5)), 9603);
        assert_eq!(core.state().reg(Reg(6)), 9603 ^ 0xFF);
        assert_eq!(core.state().reg(Reg(7)), 1600);
        assert_eq!(core.state().reg(Reg(8)) as i32, -2);
    }

    #[test]
    fn memory_and_movhi() {
        let mut p = ProgramBuilder::new();
        p.load_immediate(Reg(1), 0x1234_5678);
        p.push(Instruction::Sw {
            ra: Reg(0),
            rb: Reg(1),
            offset: 16,
        });
        p.push(Instruction::Lwz {
            rd: Reg(2),
            ra: Reg(0),
            offset: 16,
        });
        let (core, outcome) = run_program(p);
        assert!(outcome.finished());
        assert_eq!(core.state().reg(Reg(2)), 0x1234_5678);
        assert_eq!(core.memory().load_word(16).unwrap(), 0x1234_5678);
    }

    #[test]
    fn loop_counts_down() {
        // r3 = 10; do { r4 += r3; r3 -= 1 } while (r3 != 0);
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Addi {
            rd: Reg(3),
            ra: Reg(0),
            imm: 10,
        });
        let head = p.label();
        p.push(Instruction::Add {
            rd: Reg(4),
            ra: Reg(4),
            rb: Reg(3),
        });
        p.push(Instruction::Addi {
            rd: Reg(3),
            ra: Reg(3),
            imm: -1,
        });
        p.push(Instruction::Sfne {
            ra: Reg(3),
            rb: Reg(0),
        });
        p.branch_if_flag(head);
        let (core, outcome) = run_program(p);
        assert!(outcome.finished());
        assert_eq!(core.state().reg(Reg(4)), 55);
        // 1 + 10*4 instructions; 9 taken branches add the penalty cycles.
        assert_eq!(core.stats().instructions, 41);
        assert_eq!(core.stats().taken_branches, 9);
        assert_eq!(core.stats().cycles, 41 + 9 * 2);
        assert!(core.stats().ipc() < 1.0);
    }

    #[test]
    fn comparisons_signed_and_unsigned() {
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Addi {
            rd: Reg(1),
            ra: Reg(0),
            imm: -1,
        }); // 0xFFFF_FFFF
        p.push(Instruction::Addi {
            rd: Reg(2),
            ra: Reg(0),
            imm: 1,
        });
        // Signed: -1 < 1 -> flag set.
        p.push(Instruction::Sflts {
            ra: Reg(1),
            rb: Reg(2),
        });
        p.push(Instruction::Addi {
            rd: Reg(10),
            ra: Reg(0),
            imm: 0,
        });
        let skip = p.forward_label();
        p.branch_if_not_flag(skip);
        p.push(Instruction::Addi {
            rd: Reg(10),
            ra: Reg(0),
            imm: 1,
        });
        p.bind(skip);
        // Unsigned: 0xFFFF_FFFF < 1 is false -> flag clear.
        p.push(Instruction::Sfltu {
            ra: Reg(1),
            rb: Reg(2),
        });
        p.push(Instruction::Addi {
            rd: Reg(11),
            ra: Reg(0),
            imm: 0,
        });
        let skip2 = p.forward_label();
        p.branch_if_flag(skip2);
        p.push(Instruction::Addi {
            rd: Reg(11),
            ra: Reg(0),
            imm: 1,
        });
        p.bind(skip2);
        // Swapped forms.
        p.push(Instruction::Sfgts {
            ra: Reg(2),
            rb: Reg(1),
        }); // 1 > -1 -> set
        p.push(Instruction::Addi {
            rd: Reg(12),
            ra: Reg(0),
            imm: 0,
        });
        let skip3 = p.forward_label();
        p.branch_if_not_flag(skip3);
        p.push(Instruction::Addi {
            rd: Reg(12),
            ra: Reg(0),
            imm: 1,
        });
        p.bind(skip3);
        let (core, outcome) = run_program(p);
        assert!(outcome.finished());
        assert_eq!(core.state().reg(Reg(10)), 1, "signed comparison");
        assert_eq!(core.state().reg(Reg(11)), 1, "unsigned comparison");
        assert_eq!(core.state().reg(Reg(12)), 1, "swapped signed comparison");
    }

    #[test]
    fn subroutine_call_and_return() {
        let mut p = ProgramBuilder::new();
        let sub = p.forward_label();
        p.jump_and_link(sub);
        p.push(Instruction::Addi {
            rd: Reg(2),
            ra: Reg(2),
            imm: 1,
        });
        let end = p.forward_label();
        p.jump(end);
        p.bind(sub);
        p.push(Instruction::Addi {
            rd: Reg(1),
            ra: Reg(0),
            imm: 55,
        });
        p.push(Instruction::Jr {
            ra: Instruction::LINK_REGISTER,
        });
        p.bind(end);
        p.push(Instruction::Nop);
        let (core, outcome) = run_program(p);
        assert!(outcome.finished());
        assert_eq!(core.state().reg(Reg(1)), 55);
        assert_eq!(core.state().reg(Reg(2)), 1);
    }

    #[test]
    fn watchdog_catches_infinite_loop() {
        let mut p = ProgramBuilder::new();
        let head = p.label();
        p.jump(head);
        let mut core = Core::new(p.build(), 16);
        let outcome = core.run(&RunConfig {
            max_cycles: 1000,
            ..Default::default()
        });
        assert!(matches!(outcome, RunOutcome::Watchdog { .. }));
        assert!(!outcome.finished());
        assert!(outcome.cycles() >= 1000);
    }

    #[test]
    fn zero_cycle_watchdog_aborts_before_any_fetch() {
        // With an exhausted budget the loop must bail out on the watchdog
        // check without fetching (or executing) a single instruction.
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Lwz {
            rd: Reg(1),
            ra: Reg(0),
            offset: 0x7FFC, // would be a memory fault if executed
        });
        let mut core = Core::new(p.build(), 16);
        let outcome = core.run(&RunConfig {
            max_cycles: 0,
            ..Default::default()
        });
        assert_eq!(outcome, RunOutcome::Watchdog { cycles: 0 });
        assert_eq!(core.stats().instructions, 0);
    }

    #[test]
    fn exhausted_watchdog_takes_precedence_over_invalid_pc() {
        // A corrupted jump leaves the PC outside the program while the
        // budget is already spent: the run reports the watchdog (the
        // budget decision), not the stale invalid PC.
        let mut p = ProgramBuilder::new();
        p.push(Instruction::J { offset: 100 });
        let mut core = Core::new(p.build(), 16);
        let outcome = core.run(&RunConfig {
            max_cycles: 1,
            ..Default::default()
        });
        assert!(matches!(outcome, RunOutcome::Watchdog { .. }));
        assert!(!outcome.finished());
    }

    #[test]
    fn memory_fault_aborts() {
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Lwz {
            rd: Reg(1),
            ra: Reg(0),
            offset: 0x7FFC,
        });
        let mut core = Core::new(p.build(), 16);
        let outcome = core.run(&RunConfig::default());
        assert!(matches!(outcome, RunOutcome::MemoryFault { .. }));
    }

    #[test]
    fn invalid_pc_aborts() {
        let mut p = ProgramBuilder::new();
        p.push(Instruction::J { offset: 100 });
        let mut core = Core::new(p.build(), 16);
        let outcome = core.run(&RunConfig::default());
        assert!(matches!(outcome, RunOutcome::InvalidPc { pc: 101, .. }));
    }

    /// Injector flipping the flag of every comparison — the "wrong branching
    /// behavior" failure mode of the paper.
    struct FlagFlipper;

    impl FaultInjector for FlagFlipper {
        fn inject(&mut self, ctx: &ExStageContext) -> u32 {
            if ctx.alu_class.is_set_flag() {
                1
            } else {
                0
            }
        }
    }

    #[test]
    fn flag_faults_corrupt_control_flow() {
        // Flipping every comparison makes the countdown loop exit after its
        // first iteration — the "wrong branching behavior" the paper calls
        // out as a frequent consequence of injected faults.
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Addi {
            rd: Reg(3),
            ra: Reg(0),
            imm: 3,
        });
        let head = p.label();
        p.push(Instruction::Addi {
            rd: Reg(3),
            ra: Reg(3),
            imm: -1,
        });
        p.push(Instruction::Sfne {
            ra: Reg(3),
            rb: Reg(0),
        });
        p.branch_if_flag(head);
        let mut core = Core::new(p.build(), 16);
        let outcome = core.run_with_injector(
            &RunConfig {
                max_cycles: 5000,
                ..Default::default()
            },
            &mut FlagFlipper,
        );
        assert!(outcome.finished());
        assert_ne!(
            core.state().reg(Reg(3)),
            0,
            "the loop must have exited early"
        );
        assert!(core.stats().injected_faults > 0);
    }

    /// Injector that flips result bit 4 of every addition inside the kernel
    /// window only.
    struct AddBit4Flipper;

    impl FaultInjector for AddBit4Flipper {
        fn inject(&mut self, ctx: &ExStageContext) -> u32 {
            if ctx.fi_enabled && ctx.alu_class == AluClass::Add {
                1 << 4
            } else {
                0
            }
        }
    }

    #[test]
    fn fi_window_limits_injection() {
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Addi {
            rd: Reg(1),
            ra: Reg(0),
            imm: 1,
        }); // outside window
        p.push(Instruction::Addi {
            rd: Reg(2),
            ra: Reg(0),
            imm: 1,
        }); // inside window
        let program = p.build();

        let mut core = Core::new(program, 16);
        let config = RunConfig {
            fi_window: Some(1..2),
            ..Default::default()
        };
        let outcome = core.run_with_injector(&config, &mut AddBit4Flipper);
        assert!(outcome.finished());
        assert_eq!(core.state().reg(Reg(1)), 1, "outside the window: no fault");
        assert_eq!(
            core.state().reg(Reg(2)),
            1 + 16,
            "inside the window: bit 4 flipped"
        );
        assert_eq!(core.stats().injected_faults, 1);
        assert_eq!(core.stats().kernel_cycles, 1);
        assert!(core.stats().fi_rate_per_kcycle() > 0.0);
    }

    #[test]
    fn reset_preserves_memory() {
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Addi {
            rd: Reg(1),
            ra: Reg(0),
            imm: 7,
        });
        let mut core = Core::new(p.build(), 16);
        core.memory_mut().store_word(0, 99).unwrap();
        let _ = core.run(&RunConfig::default());
        assert_eq!(core.state().reg(Reg(1)), 7);
        core.reset();
        assert_eq!(core.state().reg(Reg(1)), 0);
        assert_eq!(core.stats().instructions, 0);
        assert_eq!(core.memory().load_word(0).unwrap(), 99);
        assert_eq!(core.program().len(), 1);
    }

    #[test]
    fn reset_full_matches_a_fresh_core() {
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Sw {
            ra: Reg(0),
            rb: Reg(0),
            offset: 0,
        });
        let program = std::sync::Arc::new(p.build());
        let mut used = Core::new(program.clone(), 16);
        used.memory_mut().store_word(8, 42).unwrap();
        let _ = used.run(&RunConfig::default());
        used.reset_full();
        let fresh = Core::new(program, 16);
        assert_eq!(used.state().pc, fresh.state().pc);
        assert_eq!(used.memory(), fresh.memory());
        assert_eq!(used.stats().cycles, 0);
    }

    #[test]
    fn alu_result_reference() {
        assert_eq!(Core::alu_result(AluClass::Add, u32::MAX, 1), 0);
        assert_eq!(Core::alu_result(AluClass::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(Core::alu_result(AluClass::Srl, 0x8000_0000, 31), 1);
        assert_eq!(
            Core::alu_result(AluClass::Mul, 0x1_0001, 0x1_0001),
            0x2_0001
        );
        assert_eq!(Core::alu_result(AluClass::SfLts, u32::MAX, 0), 1);
        assert_eq!(Core::alu_result(AluClass::SfLtu, u32::MAX, 0), 0);
    }
}
