//! Architectural CPU state: register file, flag and program counter.

use sfi_isa::registers::REGISTER_COUNT;
use sfi_isa::Reg;

/// The architectural state of the core.
///
/// Register `r0` is hard-wired to zero: writes to it are ignored, reads
/// always return 0.
///
/// # Example
///
/// ```
/// use sfi_cpu::CpuState;
/// use sfi_isa::Reg;
///
/// let mut state = CpuState::new();
/// state.set_reg(Reg(3), 42);
/// state.set_reg(Reg(0), 99); // ignored
/// assert_eq!(state.reg(Reg(3)), 42);
/// assert_eq!(state.reg(Reg(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    regs: [u32; REGISTER_COUNT],
    /// The branch flag written by `l.sf*` and read by `l.bf` / `l.bnf`.
    pub flag: bool,
    /// The program counter, in instruction words.
    pub pc: u32,
}

impl CpuState {
    /// Creates a reset state (all registers zero, flag clear, PC at 0).
    pub fn new() -> Self {
        CpuState {
            regs: [0; REGISTER_COUNT],
            flag: false,
            pc: 0,
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register; writes to `r0` are ignored.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// All register values (including the hard-wired `r0`).
    pub fn registers(&self) -> &[u32; REGISTER_COUNT] {
        &self.regs
    }
}

impl Default for CpuState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut s = CpuState::new();
        s.set_reg(Reg(0), 123);
        assert_eq!(s.reg(Reg(0)), 0);
        s.set_reg(Reg(31), 7);
        assert_eq!(s.reg(Reg(31)), 7);
        assert_eq!(s.registers()[31], 7);
    }

    #[test]
    fn reset_state() {
        let s = CpuState::default();
        assert_eq!(s.pc, 0);
        assert!(!s.flag);
        assert!(s.registers().iter().all(|&r| r == 0));
    }
}
