//! Cycle-accurate instruction set simulator (ISS) of the OpenRISC-like core
//! with execution-stage fault-injection hooks.
//!
//! This crate is the simulation substrate of the statistical fault-injection
//! flow: it executes programs written against `sfi-isa` on a model of the
//! 32-bit, 6-stage, ~1-IPC embedded core of the paper's case study, and it
//! exposes the single intrusion point the paper needs — the 32 execution-
//! stage ALU endpoint flip-flops.  Every cycle in which an ALU instruction
//! occupies the execution stage, the configured [`FaultInjector`] may flip
//! bits of the freshly computed result before it is written back (or before
//! it sets the branch flag), exactly like the LISA-based ISS + FI framework
//! of the paper's ref. 15.
//!
//! Non-ALU instructions (loads, stores, branches, jumps) are never faulted:
//! the case-study core is constrained so that all non-ALU paths have a
//! comfortable timing margin (Sec. 2.1 of the paper).
//!
//! # Example
//!
//! ```
//! use sfi_cpu::{Core, RunConfig};
//! use sfi_isa::program::ProgramBuilder;
//! use sfi_isa::{Instruction, Reg};
//!
//! // r3 = 6 * 7
//! let mut p = ProgramBuilder::new();
//! p.push(Instruction::Addi { rd: Reg(1), ra: Reg(0), imm: 6 });
//! p.push(Instruction::Addi { rd: Reg(2), ra: Reg(0), imm: 7 });
//! p.push(Instruction::Mul { rd: Reg(3), ra: Reg(1), rb: Reg(2) });
//!
//! let mut core = Core::new(p.build(), 1024);
//! let outcome = core.run(&RunConfig::default());
//! assert!(outcome.finished());
//! assert_eq!(core.state().reg(Reg(3)), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod fault;
pub mod memory;
pub mod state;
pub mod stats;

pub use crate::core::{Core, RunConfig, RunOutcome};
pub use fault::{ExStageContext, FaultInjector, NoFaultInjector};
pub use memory::Memory;
pub use state::CpuState;
pub use stats::RunStats;
