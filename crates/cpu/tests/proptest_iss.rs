//! Property-based tests of the instruction set simulator.

use proptest::prelude::*;
use sfi_cpu::{Core, RunConfig};
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{AluClass, Instruction, Reg};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alu_result_matches_rust_semantics(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(Core::alu_result(AluClass::Add, a, b), a.wrapping_add(b));
        prop_assert_eq!(Core::alu_result(AluClass::Sub, a, b), a.wrapping_sub(b));
        prop_assert_eq!(Core::alu_result(AluClass::Mul, a, b), a.wrapping_mul(b));
        prop_assert_eq!(Core::alu_result(AluClass::And, a, b), a & b);
        prop_assert_eq!(Core::alu_result(AluClass::Xor, a, b), a ^ b);
        prop_assert_eq!(Core::alu_result(AluClass::Sll, a, b), a.wrapping_shl(b & 31));
        prop_assert_eq!(Core::alu_result(AluClass::SfLtu, a, b), (a < b) as u32);
        prop_assert_eq!(
            Core::alu_result(AluClass::SfLts, a, b),
            ((a as i32) < (b as i32)) as u32
        );
    }

    #[test]
    fn countdown_loop_terminates_with_correct_sum(n in 1u32..200) {
        // r4 = sum(1..=n) computed with a data-dependent loop.
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Addi { rd: Reg(3), ra: Reg(0), imm: n as i16 });
        let head = p.label();
        p.push(Instruction::Add { rd: Reg(4), ra: Reg(4), rb: Reg(3) });
        p.push(Instruction::Addi { rd: Reg(3), ra: Reg(3), imm: -1 });
        p.push(Instruction::Sfne { ra: Reg(3), rb: Reg(0) });
        p.branch_if_flag(head);
        let mut core = Core::new(p.build(), 16);
        let outcome = core.run(&RunConfig::default());
        prop_assert!(outcome.finished());
        prop_assert_eq!(core.state().reg(Reg(4)), n * (n + 1) / 2);
        // Roughly one instruction per cycle plus branch penalties.
        prop_assert!(core.stats().ipc() > 0.5 && core.stats().ipc() <= 1.0);
    }

    #[test]
    fn memory_roundtrip_through_program(value in any::<u32>(), slot in 0u32..16) {
        let mut p = ProgramBuilder::new();
        p.load_immediate(Reg(1), value);
        p.push(Instruction::Sw { ra: Reg(0), rb: Reg(1), offset: (slot * 4) as i16 });
        p.push(Instruction::Lwz { rd: Reg(2), ra: Reg(0), offset: (slot * 4) as i16 });
        let mut core = Core::new(p.build(), 32);
        prop_assert!(core.run(&RunConfig::default()).finished());
        prop_assert_eq!(core.state().reg(Reg(2)), value);
    }
}
