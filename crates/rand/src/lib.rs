//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (small) slice of the `rand` 0.8 API the simulator
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and the
//! [`Rng`] convenience methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family the real `SmallRng` uses on 64-bit targets.  Streams
//! are deterministic for a given seed, which is all the fault-injection
//! experiments rely on; no claim of bit-compatibility with crates.io
//! `rand` is made.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Splits a 64-bit seed into a well-mixed stream (Vigna's SplitMix64).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly over their whole domain (the
/// `rng.gen::<T>()` entry point).
pub trait SampleStandard {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

/// Ranges that `rng.gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Guard against rounding up to the excluded end point.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + (self.end - self.start) * rng.next_f64() as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The random-number-generator interface: a 64-bit word source plus the
/// derived convenience samplers.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next uniform `f64` in `[0, 1)` (53 bits of randomness).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniformly distributed value over the whole domain of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_state(seed)
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((0..1000).filter(|_| rng.gen_bool(0.5)).count() > 300);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let x: i32 = rng.gen_range(-8..8);
            assert!((-8..8).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_domain_sampling_hits_both_halves() {
        let mut rng = SmallRng::seed_from_u64(3);
        let highs = (0..256).filter(|_| rng.gen::<u64>() > u64::MAX / 2).count();
        assert!(highs > 64 && highs < 192);
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
