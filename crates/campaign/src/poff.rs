//! Adaptive point-of-first-failure search.
//!
//! The fixed `frequency_grid` sweep spends one full Monte-Carlo cell on
//! every grid point, most of which are far from the failure transition.
//! Because correctness is monotone in frequency to a very good
//! approximation (the transition region of model C is narrow, and models
//! B/B+ are hard thresholds), the PoFF can instead be bracketed by
//! bisection: evaluate the two endpoints, then repeatedly split the
//! correct/failing bracket until it is tighter than the requested
//! resolution.  For a grid of `n` points this needs about
//! `2 + log2(n)` cells instead of `n` — typically 3–5× fewer for the
//! resolutions the figure binaries use.

use crate::engine::CampaignEngine;
use crate::spec::{CampaignSpec, CellSpec, SharedBenchmark, TrialBudget};
use sfi_core::{CaseStudy, FaultModel, SweepPoint};
use sfi_fault::OperatingPoint;

/// Configuration of an adaptive PoFF search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoffSearch {
    /// Lower end of the searched frequency range, MHz.
    pub lo_mhz: f64,
    /// Upper end of the searched frequency range, MHz.
    pub hi_mhz: f64,
    /// Stop once the failure bracket is tighter than this, MHz.
    pub resolution_mhz: f64,
    /// Monte-Carlo budget of each evaluated frequency.
    pub budget: TrialBudget,
}

impl PoffSearch {
    /// A search over `[lo_mhz, hi_mhz]` at `resolution_mhz` with a fixed
    /// per-point trial budget.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or the resolution is not positive.
    pub fn new(lo_mhz: f64, hi_mhz: f64, resolution_mhz: f64, trials: usize) -> Self {
        assert!(
            lo_mhz < hi_mhz,
            "search range [{lo_mhz}, {hi_mhz}] is empty"
        );
        assert!(resolution_mhz > 0.0, "resolution must be positive");
        PoffSearch {
            lo_mhz,
            hi_mhz,
            resolution_mhz,
            budget: TrialBudget::fixed(trials),
        }
    }

    /// Number of cells an equivalent fixed grid would evaluate for the
    /// same resolution over the same range, saturating at `usize::MAX`.
    ///
    /// A huge range over a tiny resolution can exceed what `usize` holds;
    /// the float-to-int cast saturates (and maps NaN to zero), but the
    /// `+ 1` for the inclusive upper endpoint must then saturate too
    /// instead of wrapping past zero.
    pub fn grid_equivalent_cells(&self) -> usize {
        let steps = ((self.hi_mhz - self.lo_mhz) / self.resolution_mhz).ceil();
        (steps as usize).saturating_add(1)
    }
}

/// The outcome of an adaptive PoFF search.
#[derive(Debug, Clone)]
pub struct PoffOutcome {
    /// The located point of first failure: the lowest evaluated frequency
    /// at which the benchmark no longer produces a 100 % correct result
    /// (bracketed to the requested resolution).  `None` if the benchmark
    /// is still fully correct at the top of the range.
    pub poff_mhz: Option<f64>,
    /// Every evaluated frequency with its Monte-Carlo summary, sorted by
    /// frequency.
    pub evaluated: Vec<SweepPoint>,
    /// Cells actually evaluated (compare with
    /// [`PoffSearch::grid_equivalent_cells`]).
    pub cells_evaluated: usize,
}

/// Runs an adaptive PoFF search for `benchmark` under `model`, keeping
/// voltage and noise from `base_point`.
///
/// Every evaluated frequency is one campaign cell executed by `engine`
/// (so its trials run in parallel), seeded deterministically from `seed`
/// and the evaluation ordinal; the search sequence itself is
/// deterministic, so the whole outcome is reproducible.
pub fn adaptive_poff(
    engine: &CampaignEngine,
    study: &CaseStudy,
    benchmark: SharedBenchmark,
    model: FaultModel,
    base_point: OperatingPoint,
    search: PoffSearch,
    seed: u64,
) -> PoffOutcome {
    let mut evaluated: Vec<SweepPoint> = Vec::new();
    let mut ordinal = 0u64;
    let mut eval = |freq: f64| -> bool {
        // Each evaluation is a single-cell campaign whose master seed is
        // drawn from the search seed and the evaluation ordinal, giving
        // every evaluated frequency its own deterministic trial stream.
        let eval_seed = sfi_core::derive_trial_seed(seed, ordinal, 0);
        ordinal += 1;
        let mut spec = CampaignSpec::new(format!("poff@{freq:.3}MHz"), eval_seed);
        let b = spec.add_shared_benchmark(benchmark.clone());
        spec.add_cell(CellSpec {
            benchmark: b,
            model,
            point: base_point.at_frequency(freq),
            budget: search.budget,
        });
        let result = engine.run(study, &spec);
        let summary = result.summary(0);
        let fully_correct = summary.correct_fraction() >= 1.0;
        evaluated.push(SweepPoint {
            freq_mhz: freq,
            summary,
        });
        fully_correct
    };

    let poff_mhz = if !eval(search.lo_mhz) {
        // Failing already at the bottom of the range: report it as the
        // (upper bound of the) PoFF, like the grid sweep would.
        Some(search.lo_mhz)
    } else if eval(search.hi_mhz) {
        None
    } else {
        let (mut lo, mut hi) = (search.lo_mhz, search.hi_mhz);
        while hi - lo > search.resolution_mhz {
            let mid = 0.5 * (lo + hi);
            // A resolution below the float spacing of the bracket would
            // otherwise loop forever, burning a Monte-Carlo cell per turn.
            if mid <= lo || mid >= hi {
                break;
            }
            if eval(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    };

    evaluated.sort_by(|a, b| a.freq_mhz.total_cmp(&b.freq_mhz));
    PoffOutcome {
        poff_mhz,
        evaluated,
        cells_evaluated: ordinal as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_equivalent_cells_counts_inclusive_endpoints() {
        let search = PoffSearch::new(600.0, 900.0, 10.0, 5);
        assert_eq!(search.grid_equivalent_cells(), 31);
        // A range that is not a multiple of the resolution rounds up.
        let search = PoffSearch::new(600.0, 905.0, 10.0, 5);
        assert_eq!(search.grid_equivalent_cells(), 32);
    }

    #[test]
    fn grid_equivalent_cells_saturates_instead_of_overflowing() {
        // A huge range over a tiny resolution: ~1e312 grid points cannot
        // be represented; the count must clamp, not wrap.
        let search = PoffSearch::new(0.0, f64::MAX, 1e-4, 1);
        assert_eq!(search.grid_equivalent_cells(), usize::MAX);
        // Just past the usize boundary the `+ 1` alone would wrap to 0.
        let search = PoffSearch::new(0.0, usize::MAX as f64, 1.0, 1);
        assert_eq!(search.grid_equivalent_cells(), usize::MAX);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_panics() {
        PoffSearch::new(900.0, 600.0, 10.0, 5);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn non_positive_resolution_panics() {
        PoffSearch::new(600.0, 900.0, 0.0, 5);
    }
}
