//! The parallel campaign executor: a work-stealing pool of std threads
//! over a sharded job queue, with deterministic per-trial seeding and
//! batched adaptive sampling.
//!
//! # Determinism
//!
//! A trial's outcome depends only on `(campaign seed, cell index, trial
//! index)` — workers never share mutable simulation state, and the
//! per-trial injector seed comes from
//! [`sfi_core::experiment::derive_trial_seed`].  Adaptive stopping
//! decisions are taken only at batch boundaries over the complete set of
//! finished trials of a cell, and the monitored statistics are binomial
//! counts (order-independent), so the *set* of trials a cell runs is the
//! same for any thread count.  Final per-cell aggregates are folded in
//! trial-index order.  Together this makes campaign results bit-identical
//! whether they ran on one thread or sixteen.
//!
//! # Work stealing
//!
//! Jobs (one per trial) live in one queue shard per worker.  A worker
//! drains its own shard and steals from the others when empty; batches
//! scheduled by adaptive refinement are pushed round-robin across shards
//! so late-campaign work stays balanced.

use crate::checkpoint;
use crate::spec::{CampaignSpec, CellSpec};
use crate::stats::CellStats;
use sfi_core::experiment::{derive_trial_seed, golden_cycles, watchdog_cycles, TrialContext};
use sfi_core::{CaseStudy, ExperimentSummary, TrialResult};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// A per-cell completion callback (see [`CampaignEngine::with_progress`]).
///
/// Invoked from worker threads, so it must be `Send + Sync`; keep it
/// cheap — the engine does not buffer around a slow observer.
pub type ProgressHook = Arc<dyn Fn(&CellResult) + Send + Sync>;

/// Result of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Index of the cell in the spec.
    pub cell: usize,
    /// The individual trials, in trial-index order.
    pub trials: Vec<TrialResult>,
    /// Streaming aggregates over `trials`.
    pub stats: CellStats,
    /// Whether the adaptive stop rule cut the cell off before
    /// `max_trials`.
    pub stopped_early: bool,
    /// Whether this cell was restored from a checkpoint instead of being
    /// simulated.
    pub from_checkpoint: bool,
}

impl CellResult {
    /// The cell's trials as a core [`ExperimentSummary`].
    pub fn summary(&self) -> ExperimentSummary {
        ExperimentSummary {
            trials: self.trials.clone(),
        }
    }
}

/// Execution observations of one campaign run (used to verify that trials
/// actually ran concurrently).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Number of distinct worker threads that executed at least one trial.
    pub worker_threads_used: usize,
    /// Maximum number of trials observed simultaneously in flight.
    pub max_concurrent_trials: usize,
    /// Trials actually simulated (excludes checkpointed cells).
    pub executed_trials: usize,
}

/// The outcome of a campaign: one [`CellResult`] per spec cell plus run
/// metrics.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The campaign name (copied from the spec).
    pub name: String,
    /// The campaign master seed (copied from the spec).
    pub seed: u64,
    /// The spec fingerprint the result belongs to.
    pub fingerprint: u64,
    /// Per-cell results, index-aligned with the spec's cells.
    pub cells: Vec<CellResult>,
    /// Execution observations.
    pub metrics: EngineMetrics,
    /// Whether the run was cut short by a cancellation flag
    /// ([`CampaignEngine::with_cancel`]).  Cancelled runs may contain
    /// cells with fewer trials than their budget (including none).
    pub cancelled: bool,
}

impl CampaignResult {
    /// The summary of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn summary(&self, index: usize) -> ExperimentSummary {
        self.cells[index].summary()
    }

    /// Converts a contiguous range of cells (as returned by
    /// `CampaignSpec::add_frequency_sweep`) into core sweep points.
    pub fn sweep_points(
        &self,
        spec: &CampaignSpec,
        cells: std::ops::Range<usize>,
    ) -> Vec<sfi_core::SweepPoint> {
        cells
            .map(|i| sfi_core::SweepPoint {
                freq_mhz: spec.cells()[i].point.freq_mhz(),
                summary: self.summary(i),
            })
            .collect()
    }
}

/// The parallel campaign executor.
#[derive(Clone)]
pub struct CampaignEngine {
    threads: usize,
    checkpoint_path: Option<PathBuf>,
    progress: Option<ProgressHook>,
    cancel: Option<Arc<AtomicBool>>,
    seed_cells: Vec<CellResult>,
    trace_job: Option<u64>,
}

impl std::fmt::Debug for CampaignEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignEngine")
            .field("threads", &self.threads)
            .field("checkpoint_path", &self.checkpoint_path)
            .field("progress", &self.progress.as_ref().map(|_| "<hook>"))
            .field("cancel", &self.cancel)
            .field("seed_cells", &self.seed_cells.len())
            .field("trace_job", &self.trace_job)
            .finish()
    }
}

impl Default for CampaignEngine {
    fn default() -> Self {
        CampaignEngine::new()
    }
}

impl CampaignEngine {
    /// An engine using all available CPUs.
    pub fn new() -> Self {
        let threads = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        CampaignEngine {
            threads,
            checkpoint_path: None,
            progress: None,
            cancel: None,
            seed_cells: Vec::new(),
            trace_job: None,
        }
    }

    /// A single-threaded engine (the sequential reference).
    pub fn sequential() -> Self {
        CampaignEngine {
            threads: 1,
            checkpoint_path: None,
            progress: None,
            cancel: None,
            seed_cells: Vec::new(),
            trace_job: None,
        }
    }

    /// Sets the number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = threads;
        self
    }

    /// Enables checkpointing: completed cells are streamed to `path`
    /// (atomically, via a temp file) and restored by later runs of the
    /// same spec, making long campaigns resumable.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Installs a per-cell completion callback, the streaming hook the
    /// serve daemon uses: it fires once for every cell restored from a
    /// checkpoint (before any simulation starts, in cell order) and once
    /// for every cell that finishes simulating (in completion order, from
    /// whichever worker thread finished it).
    pub fn with_progress(mut self, hook: ProgressHook) -> Self {
        self.progress = Some(hook);
        self
    }

    /// Installs a cooperative cancellation flag: once `flag` becomes
    /// `true`, workers stop picking up trials and [`CampaignEngine::run`]
    /// returns early with [`CampaignResult::cancelled`] set.  Cells that
    /// had not finished keep the contiguous prefix of trials that did
    /// complete (possibly none); partially completed cells are *not*
    /// checkpointed.
    ///
    /// Cancellation composes with checkpointing: every *completed* cell
    /// was already flushed to the checkpoint file the moment it finished,
    /// so a cancelled run has lost nothing but its in-flight cells and a
    /// later run of the same spec resumes from the last completed cell.
    /// [`CampaignEngine::with_seed_cells`] offers the same resume path
    /// without a file, which is how the serve scheduler restarts
    /// preempted jobs.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Seeds the run with already-completed cells, as if they had been
    /// restored from a checkpoint file.
    ///
    /// This is the in-memory resume path for a cancelled (e.g. preempted)
    /// run: feed the completed cells of the earlier attempt back in and
    /// only the unfinished cells are simulated.  Because per-trial seeds
    /// are a pure function of `(campaign seed, cell index, trial index)`,
    /// the completed campaign is bit-identical to one that was never
    /// interrupted.
    ///
    /// Seeded cells are validated like checkpoint-loaded ones: a cell
    /// whose index is out of range, that has no trials, or that exceeds
    /// its budget's `max_trials` is ignored rather than trusted.  Seeds
    /// take precedence over cells restored from a checkpoint file, and
    /// they fire the progress hook marked
    /// [`CellResult::from_checkpoint`] just like file-restored cells.
    pub fn with_seed_cells(mut self, cells: Vec<CellResult>) -> Self {
        self.seed_cells = cells;
        self
    }

    /// Attributes every span and counter record this run emits to a serve
    /// job id, so per-job trace filters (`sfi-client trace --job`) pick up
    /// the engine's cell and trial spans.
    pub fn with_trace_job(mut self, job: u64) -> Self {
        self.trace_job = Some(job);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the campaign.
    ///
    /// If a checkpoint path is configured, cells recorded there (for this
    /// exact spec fingerprint) are restored instead of re-simulated, and
    /// every newly completed cell is persisted.  I/O errors while writing
    /// checkpoints are deliberately non-fatal: losing a checkpoint must
    /// not kill a multi-hour campaign.
    ///
    /// # Panics
    ///
    /// Panics if the spec references a characterization voltage the study
    /// does not provide, or if a worker thread panics.
    pub fn run(&self, study: &CaseStudy, spec: &CampaignSpec) -> CampaignResult {
        let fingerprint = spec.fingerprint();
        let mut campaign_span = sfi_obs::Span::begin("campaign", "engine")
            .arg("name", spec.name.as_str())
            .arg("cells", spec.cells().len() as u64)
            .arg("threads", self.threads as u64);
        if let Some(job) = self.trace_job {
            campaign_span = campaign_span.job(job);
        }
        let mut restored: Vec<Option<CellResult>> = match &self.checkpoint_path {
            Some(path) => checkpoint::load_cells(path, spec, fingerprint),
            None => vec![None; spec.cells().len()],
        };
        // Overlay the in-memory seeds (see `with_seed_cells`); they win
        // over file-restored cells because the caller vouches they belong
        // to this exact spec and seed.
        for cell in &self.seed_cells {
            if let Some(slot) = restored.get_mut(cell.cell) {
                let budget = spec.cells()[cell.cell].budget;
                if !cell.trials.is_empty() && cell.trials.len() <= budget.max_trials {
                    let mut seeded = cell.clone();
                    seeded.from_checkpoint = true;
                    *slot = Some(seeded);
                }
            }
        }

        // Checkpoint-restored cells are announced up front, so a streaming
        // observer sees every cell of the campaign exactly once.
        if let Some(hook) = &self.progress {
            for cell in restored.iter().flatten() {
                hook(cell);
            }
        }

        // The expensive characterization inside `study` is shared by
        // reference; the only per-benchmark precomputation is the golden
        // (fault-free) cycle count that sizes the watchdog, done once per
        // benchmark instead of once per cell or — as the old
        // `run_experiment` did — once per sweep point.
        let watchdogs: Vec<u64> = spec
            .benchmarks()
            .iter()
            .map(|b| watchdog_cycles(golden_cycles(b.as_ref())))
            .collect();

        let checkpoint_sink = self.checkpoint_path.as_deref().map(|path| {
            // Seed the serialized-cell cache with the restored cells, so
            // the first incremental write already contains them.
            let cells: BTreeMap<usize, String> = restored
                .iter()
                .flatten()
                .map(|cell| (cell.cell, checkpoint::cell_json_string(cell)))
                .collect();
            CheckpointSink {
                path,
                fingerprint,
                cells: Mutex::new(cells),
            }
        });
        let shared = Shared::new(
            study,
            spec,
            &watchdogs,
            restored,
            self.progress.clone(),
            self.cancel.clone(),
            campaign_span.id(),
            self.trace_job,
        );

        if shared.open_cells.load(Ordering::SeqCst) > 0 {
            thread::scope(|scope| {
                for worker in 0..self.threads {
                    let shared = &shared;
                    let sink = checkpoint_sink.as_ref();
                    scope.spawn(move || worker_loop(worker, shared, sink));
                }
            });
        }

        // A panic on a worker thread aborts the campaign; re-raise it here
        // instead of returning partial results (or, worse, hanging the
        // surviving workers).
        if let Some(payload) = shared
            .panic_payload
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            panic::resume_unwind(payload);
        }

        let mut cells = Vec::with_capacity(spec.cells().len());
        for (index, state) in shared.cells.into_iter().enumerate() {
            let state = state
                .into_inner()
                .expect("no worker holds a cell lock any more");
            cells.push(state.into_result(index));
        }
        let workers_used = shared
            .worker_used
            .iter()
            .filter(|w| w.load(Ordering::Relaxed) > 0)
            .count();
        let cancelled = self
            .cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst));
        campaign_span.set_arg(
            "executed_trials",
            shared.executed_trials.load(Ordering::SeqCst) as u64,
        );
        campaign_span.finish();
        sfi_obs::span::flush_thread();
        CampaignResult {
            name: spec.name.clone(),
            seed: spec.seed,
            fingerprint,
            cells,
            metrics: EngineMetrics {
                worker_threads_used: workers_used,
                max_concurrent_trials: shared.max_in_flight.load(Ordering::SeqCst),
                executed_trials: shared.executed_trials.load(Ordering::SeqCst),
            },
            cancelled,
        }
    }

    /// Runs the campaign with checkpointing at `path` (convenience for
    /// [`CampaignEngine::with_checkpoint`] + [`CampaignEngine::run`]).
    ///
    /// Checkpoint I/O errors are non-fatal (reported on stderr): a lost
    /// checkpoint must not kill a multi-hour campaign, so there is no
    /// `Result` here.
    pub fn run_resumable(
        &self,
        study: &CaseStudy,
        spec: &CampaignSpec,
        path: impl Into<PathBuf>,
    ) -> CampaignResult {
        self.clone().with_checkpoint(path).run(study, spec)
    }
}

/// One (cell, trial) work unit.
#[derive(Debug, Clone, Copy)]
struct Job {
    cell: u32,
    trial: u32,
}

/// Mutable per-cell execution state.
///
/// `finished` / `correct` are running binomial counters kept in sync with
/// `completed`, so adaptive stop decisions are O(1) instead of re-folding
/// the trial prefix at every batch boundary.
#[derive(Debug)]
struct CellState {
    scheduled: usize,
    completed: usize,
    finished: usize,
    correct: usize,
    results: Vec<Option<TrialResult>>,
    done: bool,
    stopped_early: bool,
    from_checkpoint: bool,
    /// When the cell's first trials were scheduled, for the cell span.
    started_us: u64,
}

impl CellState {
    fn into_result(self, index: usize) -> CellResult {
        // Finished cells have a full prefix of `completed` results.  A
        // cancelled run can leave holes (trials complete out of order), so
        // keep only the contiguous prefix — the part that is well-defined
        // regardless of which in-flight trials made it.
        let trials: Vec<TrialResult> = self
            .results
            .into_iter()
            .take(self.completed)
            .map_while(|t| t)
            .collect();
        let stats = CellStats::from_trials(&trials);
        CellResult {
            cell: index,
            trials,
            stats,
            stopped_early: self.stopped_early,
            from_checkpoint: self.from_checkpoint,
        }
    }
}

struct CheckpointSink<'a> {
    path: &'a Path,
    fingerprint: u64,
    /// Serialized JSON of every completed cell, keyed by cell index.  A
    /// finishing worker serializes only its own cell and re-renders the
    /// document from this cache, so checkpointing costs O(cell) encoding
    /// plus one file write — not a re-walk of all completed cells.  The
    /// mutex also serializes the writes themselves.
    cells: Mutex<BTreeMap<usize, String>>,
}

struct Shared<'a> {
    study: &'a CaseStudy,
    spec: &'a CampaignSpec,
    watchdogs: &'a [u64],
    queues: Vec<Mutex<VecDeque<Job>>>,
    cells: Vec<Mutex<CellState>>,
    /// Cells not yet finished; workers exit when this reaches zero.
    open_cells: AtomicUsize,
    /// Round-robin cursor for spreading new batches across shards.
    next_shard: AtomicUsize,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
    executed_trials: AtomicUsize,
    worker_used: Vec<AtomicUsize>,
    /// Set when a worker panics; all workers drain out and the panic is
    /// re-raised on the caller thread.
    aborted: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Per-cell completion observer, if any.
    progress: Option<ProgressHook>,
    /// External cancellation flag, if any.
    cancel: Option<Arc<AtomicBool>>,
    /// Span id of the enclosing campaign span (parent of cell/trial spans).
    trace_parent: u64,
    /// Serve job id the run's trace records are attributed to, if any.
    trace_job: Option<u64>,
}

impl<'a> Shared<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        study: &'a CaseStudy,
        spec: &'a CampaignSpec,
        watchdogs: &'a [u64],
        restored: Vec<Option<CellResult>>,
        progress: Option<ProgressHook>,
        cancel: Option<Arc<AtomicBool>>,
        trace_parent: u64,
        trace_job: Option<u64>,
    ) -> Self {
        let mut cells = Vec::with_capacity(spec.cells().len());
        let mut open = 0usize;
        let mut initial_jobs: Vec<Job> = Vec::new();
        for (index, cell_spec) in spec.cells().iter().enumerate() {
            let max = cell_spec.budget.max_trials;
            match restored.get(index).and_then(|r| r.as_ref()) {
                Some(result) => {
                    let mut results: Vec<Option<TrialResult>> =
                        result.trials.iter().copied().map(Some).collect();
                    let completed = results.len();
                    results.resize(max.max(completed), None);
                    cells.push(Mutex::new(CellState {
                        scheduled: completed,
                        completed,
                        finished: result.stats.finished() as usize,
                        correct: result.stats.correct() as usize,
                        results,
                        done: true,
                        stopped_early: result.stopped_early,
                        from_checkpoint: true,
                        started_us: 0,
                    }));
                }
                None => {
                    let initial = cell_spec.budget.min_trials.min(max);
                    for trial in 0..initial {
                        initial_jobs.push(Job {
                            cell: index as u32,
                            trial: trial as u32,
                        });
                    }
                    cells.push(Mutex::new(CellState {
                        scheduled: initial,
                        completed: 0,
                        finished: 0,
                        correct: 0,
                        results: vec![None; max],
                        done: false,
                        stopped_early: false,
                        from_checkpoint: false,
                        started_us: sfi_obs::clock::now_micros(),
                    }));
                    open += 1;
                }
            }
        }
        Shared {
            study,
            spec,
            watchdogs,
            queues: Vec::new(),
            cells,
            open_cells: AtomicUsize::new(open),
            next_shard: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
            executed_trials: AtomicUsize::new(0),
            worker_used: Vec::new(),
            aborted: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            progress,
            cancel,
            trace_parent,
            trace_job,
        }
        .with_initial_jobs(initial_jobs)
    }

    /// Whether the external cancellation flag is raised.
    fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    fn with_initial_jobs(mut self, jobs: Vec<Job>) -> Self {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(16);
        // One shard per possible worker; sized generously so any
        // `with_threads` choice gets its own shard.
        self.queues = (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        self.worker_used = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        self.push_jobs(jobs);
        self
    }

    /// Distributes jobs round-robin over the queue shards.
    fn push_jobs(&self, jobs: Vec<Job>) {
        for job in jobs {
            let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.queues.len();
            self.queues[shard]
                .lock()
                .expect("queue lock")
                .push_back(job);
        }
    }

    /// Pops a job: the worker's own shard first, then steals round-robin.
    fn pop_job(&self, worker: usize) -> Option<Job> {
        let shards = self.queues.len();
        let own = worker % shards;
        if let Some(job) = self.queues[own].lock().expect("queue lock").pop_front() {
            return Some(job);
        }
        for offset in 1..shards {
            let victim = (own + offset) % shards;
            // Steal from the back to reduce contention with the owner.
            if let Some(job) = self.queues[victim].lock().expect("queue lock").pop_back() {
                sfi_obs::metrics().engine_steals.inc();
                return Some(job);
            }
        }
        None
    }
}

fn worker_loop(worker: usize, shared: &Shared<'_>, sink: Option<&CheckpointSink<'_>>) {
    // Per-worker scratch: the simulated core is recycled per benchmark and
    // the injector per (model, operating point), so steady-state trial
    // execution allocates nothing.  Trials stay bit-identical — a recycled
    // core/injector is indistinguishable from a fresh one — so results do
    // not depend on which worker ran which trial.
    let mut context = TrialContext::new();
    // Utilization accounting: thread-local micros, flushed to the sharded
    // registry counters and a per-worker trace counter event at exit.
    let mut busy_us = 0u64;
    let mut idle_us = 0u64;
    let mut steal_us = 0u64;
    loop {
        if shared.aborted.load(Ordering::SeqCst) || shared.is_cancelled() {
            break;
        }
        let pop_start = sfi_obs::clock::now_micros();
        let popped = shared.pop_job(worker);
        let pop_end = sfi_obs::clock::now_micros();
        steal_us += pop_end.saturating_sub(pop_start);
        match popped {
            Some(job) => {
                // A panicking trial (e.g. a model asking for an
                // uncharacterized voltage) must abort the whole campaign,
                // not leave the other workers waiting forever for the
                // panicked cell to finish.
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    execute_job(worker, shared, sink, &mut context, job)
                }));
                busy_us += sfi_obs::clock::now_micros().saturating_sub(pop_end);
                if let Err(payload) = outcome {
                    let mut slot = shared
                        .panic_payload
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    slot.get_or_insert(payload);
                    shared.aborted.store(true, Ordering::SeqCst);
                    break;
                }
            }
            None => {
                if shared.open_cells.load(Ordering::SeqCst) == 0 {
                    break;
                }
                // Open cells but no runnable job: another worker is
                // finishing a batch that may schedule more. Back off
                // briefly instead of spinning on the queue locks.
                thread::sleep(Duration::from_micros(50));
                idle_us += sfi_obs::clock::now_micros().saturating_sub(pop_end);
            }
        }
    }
    let metrics = sfi_obs::metrics();
    metrics.engine_worker_busy_us.add(busy_us);
    metrics.engine_worker_idle_us.add(idle_us);
    metrics.engine_worker_steal_us.add(steal_us);
    sfi_obs::span::record_counter(
        "worker_utilization",
        shared.trace_job,
        vec![
            ("busy_us", busy_us as f64),
            ("idle_us", idle_us as f64),
            ("steal_us", steal_us as f64),
        ],
    );
    sfi_obs::span::flush_thread();
}

fn execute_job(
    worker: usize,
    shared: &Shared<'_>,
    sink: Option<&CheckpointSink<'_>>,
    context: &mut TrialContext,
    job: Job,
) {
    let cell_index = job.cell as usize;
    let cell_spec = shared.spec.cells()[cell_index];
    let benchmark = shared.spec.benchmarks()[cell_spec.benchmark].as_ref();
    let max_cycles = shared.watchdogs[cell_spec.benchmark];
    let trial_seed = derive_trial_seed(shared.spec.seed, cell_index as u64, job.trial as u64);

    let in_flight = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
    shared.max_in_flight.fetch_max(in_flight, Ordering::SeqCst);
    shared.worker_used[worker % shared.worker_used.len()].fetch_add(1, Ordering::Relaxed);

    let trial_start = sfi_obs::clock::now_micros();
    let result = context.run_trial(
        shared.study,
        benchmark,
        cell_spec.benchmark,
        cell_spec.model,
        cell_spec.point,
        max_cycles,
        trial_seed,
    );
    // One span per trial: two clock reads and a push on the thread-local
    // buffer (drained at its capacity or cell boundaries — never a lock
    // per trial).
    sfi_obs::span::record_span(
        "trial",
        "engine",
        trial_start,
        sfi_obs::clock::now_micros().saturating_sub(trial_start),
        shared.trace_parent,
        shared.trace_job,
        vec![
            ("cell", sfi_obs::FieldValue::U64(cell_index as u64)),
            ("trial", sfi_obs::FieldValue::U64(job.trial as u64)),
        ],
    );

    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    shared.executed_trials.fetch_add(1, Ordering::SeqCst);

    let mut finished_cell = false;
    let mut checkpoint_snapshot: Option<CellResult> = None;
    // `(started_us, trials, stopped_early)` of the finishing cell, for
    // the cell span emitted outside the lock.
    let mut cell_span: Option<(u64, usize, bool)> = None;
    {
        let mut state = shared.cells[cell_index].lock().expect("cell lock");
        debug_assert!(state.results[job.trial as usize].is_none());
        if result.finished {
            state.finished += 1;
        }
        if result.correct {
            state.correct += 1;
        }
        state.results[job.trial as usize] = Some(result);
        state.completed += 1;
        if state.completed == state.scheduled && !state.done {
            // Batch boundary: decide over the full, deterministic set of
            // completed trials.
            let decision = decide(&cell_spec, &state);
            match decision {
                BatchDecision::Stop { early } => {
                    state.done = true;
                    state.stopped_early = early;
                    finished_cell = true;
                    cell_span = Some((state.started_us, state.completed, early));
                    if early {
                        let saved = cell_spec.budget.max_trials - state.completed;
                        sfi_obs::metrics().engine_trials_saved.add(saved as u64);
                    }
                    if sink.is_some() || shared.progress.is_some() {
                        checkpoint_snapshot = Some(snapshot_cell(cell_index, &state));
                    }
                }
                BatchDecision::Continue { additional } => {
                    let start = state.scheduled;
                    state.scheduled += additional;
                    drop(state);
                    let jobs = (start..start + additional)
                        .map(|trial| Job {
                            cell: job.cell,
                            trial: trial as u32,
                        })
                        .collect();
                    shared.push_jobs(jobs);
                }
            }
        }
    }

    if finished_cell {
        sfi_obs::metrics().engine_cells_finished.inc();
        if let Some((started_us, trials, stopped_early)) = cell_span {
            sfi_obs::span::record_span(
                "cell",
                "engine",
                started_us,
                sfi_obs::clock::now_micros().saturating_sub(started_us),
                shared.trace_parent,
                shared.trace_job,
                vec![
                    ("cell", sfi_obs::FieldValue::U64(cell_index as u64)),
                    ("trials", sfi_obs::FieldValue::U64(trials as u64)),
                    (
                        "stopped_early",
                        sfi_obs::FieldValue::U64(stopped_early as u64),
                    ),
                ],
            );
            // Cell completion is the engine's coarse boundary: drain the
            // thread buffer so wire-fetched traces stay current.
            sfi_obs::span::flush_thread();
        }
        if let (Some(sink), Some(snapshot)) = (sink, &checkpoint_snapshot) {
            write_checkpoint(shared, sink, snapshot);
        }
        if let (Some(hook), Some(snapshot)) = (&shared.progress, &checkpoint_snapshot) {
            hook(snapshot);
        }
        // Last: a worker seeing zero open cells must be able to trust that
        // all results (and the checkpoint) are in place.
        shared.open_cells.fetch_sub(1, Ordering::SeqCst);
    }
}

enum BatchDecision {
    Stop { early: bool },
    Continue { additional: usize },
}

fn decide(cell_spec: &CellSpec, state: &CellState) -> BatchDecision {
    let budget = cell_spec.budget;
    if let Some(rule) = budget.stop {
        // The monitored statistics are the running binomial counters —
        // order-independent, so the decision stays deterministic.
        let satisfied = state.completed >= budget.min_trials
            && rule.is_satisfied_counts(
                state.finished as u64,
                state.correct as u64,
                state.completed as u64,
            );
        if satisfied {
            return BatchDecision::Stop {
                early: state.completed < budget.max_trials,
            };
        }
    }
    let remaining = budget.max_trials - state.scheduled;
    if remaining == 0 {
        BatchDecision::Stop { early: false }
    } else {
        BatchDecision::Continue {
            additional: budget.batch.min(remaining),
        }
    }
}

fn collect_prefix(results: &[Option<TrialResult>], completed: usize) -> Vec<TrialResult> {
    results[..completed]
        .iter()
        .map(|t| t.expect("batch boundary implies a full prefix"))
        .collect()
}

/// Copies one just-finished cell out of its state (called under the cell
/// lock, once per cell).
fn snapshot_cell(index: usize, state: &CellState) -> CellResult {
    let trials = collect_prefix(&state.results, state.completed);
    let stats = CellStats::from_trials(&trials);
    CellResult {
        cell: index,
        trials,
        stats,
        stopped_early: state.stopped_early,
        from_checkpoint: state.from_checkpoint,
    }
}

fn write_checkpoint(shared: &Shared<'_>, sink: &CheckpointSink<'_>, cell: &CellResult) {
    // Serialize only the newly finished cell; the document is re-rendered
    // from the cached per-cell JSON strings. No cell locks are held here.
    let encoded = checkpoint::cell_json_string(cell);
    let mut cells = sink.cells.lock().expect("checkpoint lock");
    cells.insert(cell.cell, encoded);
    let text = checkpoint::document_text(shared.spec, sink.fingerprint, cells.values());
    if let Err(err) = checkpoint::store_text(sink.path, &text) {
        // Non-fatal: a lost checkpoint must not kill the campaign.
        eprintln!("warning: failed to write campaign checkpoint: {err}");
    } else {
        sfi_obs::metrics().engine_checkpoint_writes.inc();
    }
}
