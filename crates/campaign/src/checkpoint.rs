//! Campaign checkpointing and result export.
//!
//! A checkpoint is a JSON document recording every completed cell of a
//! campaign together with the spec fingerprint it belongs to.  Writing is
//! atomic (temp file + rename), so a campaign killed mid-write leaves the
//! previous checkpoint intact; loading is strict about the fingerprint —
//! a checkpoint of a different or edited spec is ignored rather than
//! silently mixed into fresh results.
//!
//! Trials are stored as compact arrays
//! `[finished, correct, output_error, fi_rate_per_kcycle, cycles]`, with
//! NaN (the output error of crashed runs) encoded as `null`.

use crate::engine::{CampaignResult, CellResult};
use crate::json::Json;
use crate::spec::CampaignSpec;
use crate::stats::CellStats;
use sfi_core::TrialResult;
use std::fs;
use std::io;
use std::path::Path;

/// Current checkpoint format version.
pub const FORMAT_VERSION: u64 = 1;

fn trial_to_json(t: &TrialResult) -> Json {
    Json::Arr(vec![
        Json::Bool(t.finished),
        Json::Bool(t.correct),
        Json::Num(t.output_error),
        Json::Num(t.fi_rate_per_kcycle),
        Json::Num(t.cycles as f64),
    ])
}

fn trial_from_json(value: &Json) -> Option<TrialResult> {
    let fields = value.as_arr()?;
    if fields.len() != 5 {
        return None;
    }
    Some(TrialResult {
        finished: fields[0].as_bool()?,
        correct: fields[1].as_bool()?,
        output_error: fields[2].as_f64()?,
        fi_rate_per_kcycle: fields[3].as_f64()?,
        cycles: fields[4].as_f64()? as u64,
    })
}

/// Serializes one cell result (the per-cell unit of the checkpoint
/// format, and the frame payload the serve protocol streams).
pub fn cell_to_json(cell: &CellResult) -> Json {
    Json::obj([
        ("cell", Json::Num(cell.cell as f64)),
        ("stopped_early", Json::Bool(cell.stopped_early)),
        (
            "trials",
            Json::Arr(cell.trials.iter().map(trial_to_json).collect()),
        ),
    ])
}

/// Decodes one cell result previously encoded by [`cell_to_json`].
/// The restored cell is marked [`CellResult::from_checkpoint`].
pub fn cell_from_json(value: &Json) -> Option<CellResult> {
    let index = value.get("cell")?.as_u64()? as usize;
    let stopped_early = value.get("stopped_early")?.as_bool()?;
    let trials: Option<Vec<TrialResult>> = value
        .get("trials")?
        .as_arr()?
        .iter()
        .map(trial_from_json)
        .collect();
    let trials = trials?;
    let stats = CellStats::from_trials(&trials);
    Some(CellResult {
        cell: index,
        trials,
        stats,
        stopped_early,
        from_checkpoint: true,
    })
}

/// Serializes completed cells (plus identifying campaign metadata) to a
/// JSON document.
pub fn document(spec: &CampaignSpec, fingerprint: u64, cells: &[CellResult]) -> Json {
    Json::obj([
        ("version", Json::Num(FORMAT_VERSION as f64)),
        ("name", Json::Str(spec.name.clone())),
        ("seed", Json::Str(spec.seed.to_string())),
        ("fingerprint", Json::Str(fingerprint.to_string())),
        ("cells", Json::Arr(cells.iter().map(cell_to_json).collect())),
    ])
}

/// Serializes one cell to its JSON string (the engine caches these so a
/// checkpoint write encodes only the newly finished cell).
pub(crate) fn cell_json_string(cell: &CellResult) -> String {
    cell_to_json(cell).to_string()
}

/// Renders the full checkpoint document from already-serialized cell
/// strings.  Byte-identical to `document(..).to_string()` — object keys in
/// alphabetical order, matching the canonical `Json::Obj` writer.
pub(crate) fn document_text<'a>(
    spec: &CampaignSpec,
    fingerprint: u64,
    cells: impl Iterator<Item = &'a String>,
) -> String {
    let mut out = String::from("{\"cells\":[");
    for (i, cell) in cells.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(cell);
    }
    out.push_str("],\"fingerprint\":");
    out.push_str(&Json::Str(fingerprint.to_string()).to_string());
    out.push_str(",\"name\":");
    out.push_str(&Json::Str(spec.name.clone()).to_string());
    out.push_str(",\"seed\":");
    out.push_str(&Json::Str(spec.seed.to_string()).to_string());
    out.push_str(",\"version\":1}");
    out
}

/// Atomically writes `text` to `path` (temp file + rename).
pub(crate) fn store_text(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

/// Atomically writes the checkpoint for `cells` to `path`.
pub fn store_cells(
    path: &Path,
    spec: &CampaignSpec,
    fingerprint: u64,
    cells: &[CellResult],
) -> io::Result<()> {
    store_text(path, &document(spec, fingerprint, cells).to_string())
}

/// Loads the checkpoint at `path`, returning per-cell restored results
/// aligned with `spec.cells()`.
///
/// Missing files, malformed JSON, wrong versions and fingerprint
/// mismatches all yield an all-`None` vector: resuming falls back to a
/// fresh run instead of failing or mixing incompatible data.  Cells whose
/// index is out of range for the spec are ignored.
pub fn load_cells(path: &Path, spec: &CampaignSpec, fingerprint: u64) -> Vec<Option<CellResult>> {
    let mut restored = vec![None; spec.cells().len()];
    let Ok(text) = fs::read_to_string(path) else {
        return restored;
    };
    let Ok(doc) = Json::parse(&text) else {
        return restored;
    };
    if doc.get("version").and_then(Json::as_u64) != Some(FORMAT_VERSION) {
        return restored;
    }
    if doc.get("fingerprint").and_then(Json::as_u64) != Some(fingerprint) {
        return restored;
    }
    let Some(cells) = doc.get("cells").and_then(Json::as_arr) else {
        return restored;
    };
    for value in cells {
        if let Some(cell) = cell_from_json(value) {
            // Only accept cells that fit the spec's budget; a truncated or
            // hand-edited file must not inject impossible states.
            if let Some(slot) = restored.get_mut(cell.cell) {
                let budget = spec.cells()[cell.cell].budget;
                if !cell.trials.is_empty() && cell.trials.len() <= budget.max_trials {
                    *slot = Some(cell);
                }
            }
        }
    }
    restored
}

impl CampaignResult {
    /// Exports the full campaign result as a JSON document (the same
    /// format checkpoints use, so exported results can seed a resumed
    /// run).
    pub fn to_json(&self, spec: &CampaignSpec) -> Json {
        document(spec, self.fingerprint, &self.cells)
    }

    /// Writes the JSON export to `path` atomically.
    pub fn write_json(&self, spec: &CampaignSpec, path: impl AsRef<Path>) -> io::Result<()> {
        store_cells(path.as_ref(), spec, self.fingerprint, &self.cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_encoding_round_trips_including_nan() {
        let trials = [
            TrialResult {
                finished: true,
                correct: false,
                output_error: 0.125,
                fi_rate_per_kcycle: 2.5,
                cycles: 123_456,
            },
            TrialResult {
                finished: false,
                correct: false,
                output_error: f64::NAN,
                fi_rate_per_kcycle: 80.0,
                cycles: 999,
            },
        ];
        for t in &trials {
            let back = trial_from_json(&trial_to_json(t)).expect("decodes");
            assert_eq!(back.finished, t.finished);
            assert_eq!(back.correct, t.correct);
            assert_eq!(back.fi_rate_per_kcycle, t.fi_rate_per_kcycle);
            assert_eq!(back.cycles, t.cycles);
            assert_eq!(back.output_error.is_nan(), t.output_error.is_nan());
            if !t.output_error.is_nan() {
                assert_eq!(back.output_error, t.output_error);
            }
        }
    }

    #[test]
    fn malformed_trial_arrays_are_rejected() {
        assert_eq!(trial_from_json(&Json::Arr(vec![Json::Bool(true)])), None);
        assert_eq!(trial_from_json(&Json::Null), None);
    }

    #[test]
    fn incremental_document_matches_the_one_shot_writer() {
        use crate::spec::CampaignSpec;
        use crate::stats::CellStats;

        let spec = CampaignSpec::new("doc \"equivalence\"", u64::MAX);
        let trials = vec![TrialResult {
            finished: true,
            correct: true,
            output_error: 0.0,
            fi_rate_per_kcycle: 0.5,
            cycles: 42,
        }];
        let cells = vec![
            CellResult {
                cell: 0,
                stats: CellStats::from_trials(&trials),
                trials: trials.clone(),
                stopped_early: true,
                from_checkpoint: false,
            },
            CellResult {
                cell: 1,
                stats: CellStats::from_trials(&trials),
                trials,
                stopped_early: false,
                from_checkpoint: false,
            },
        ];
        let one_shot = document(&spec, 0xDEAD_BEEF, &cells).to_string();
        let encoded: Vec<String> = cells.iter().map(cell_json_string).collect();
        let incremental = document_text(&spec, 0xDEAD_BEEF, encoded.iter());
        assert_eq!(incremental, one_shot);
    }
}
