//! Campaign specifications: a grid of benchmarks × fault models ×
//! operating points with per-cell trial budgets.

use crate::stats::CellStats;
use sfi_core::FaultModel;
use sfi_fault::OperatingPoint;
use sfi_kernels::Benchmark;
use std::ops::Range;
use std::sync::Arc;

/// A benchmark shared between the spec and the worker threads.
pub type SharedBenchmark = Arc<dyn Benchmark + Send + Sync>;

/// When to stop sampling a cell before its trial budget is exhausted: once
/// the Wilson score interval of the chosen fraction is tighter than
/// `half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// The fraction whose confidence interval is monitored.
    pub metric: StopMetric,
    /// Target half-width of the confidence interval.
    pub half_width: f64,
    /// Critical value of the interval (1.96 ≈ 95 % confidence).
    pub z: f64,
}

impl StopRule {
    /// Stop once the 95 % interval of the correct fraction is tighter than
    /// `half_width`.
    pub fn correct_within(half_width: f64) -> Self {
        StopRule {
            metric: StopMetric::CorrectFraction,
            half_width,
            z: 1.96,
        }
    }

    /// Stop once the 95 % interval of the finished fraction is tighter
    /// than `half_width`.
    pub fn finished_within(half_width: f64) -> Self {
        StopRule {
            metric: StopMetric::FinishedFraction,
            half_width,
            z: 1.96,
        }
    }

    /// Whether `stats` satisfies the rule.
    pub fn is_satisfied(&self, stats: &CellStats) -> bool {
        self.is_satisfied_counts(stats.finished(), stats.correct(), stats.trials())
    }

    /// Streaming form of [`StopRule::is_satisfied`]: evaluates the rule
    /// directly on binomial counters (the engine keeps these per cell so
    /// batch-boundary decisions are O(1)).
    pub fn is_satisfied_counts(&self, finished: u64, correct: u64, trials: u64) -> bool {
        let successes = match self.metric {
            StopMetric::CorrectFraction => correct,
            StopMetric::FinishedFraction => finished,
        };
        crate::stats::wilson_interval(successes, trials, self.z).half_width <= self.half_width
    }
}

/// The monitored fraction of a [`StopRule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopMetric {
    /// Fraction of trials with an exactly correct output.
    CorrectFraction,
    /// Fraction of trials that ran to completion.
    FinishedFraction,
}

/// The trial budget of one campaign cell.
///
/// A cell first runs `min_trials`, then — if an adaptive [`StopRule`] is
/// configured and not yet satisfied — keeps adding batches of `batch`
/// trials until the rule holds or `max_trials` is reached.  Stopping
/// decisions are only taken at batch boundaries over the full set of
/// completed trials, which keeps parallel and sequential execution
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialBudget {
    /// Trials always run before the stop rule is first consulted.
    pub min_trials: usize,
    /// Hard upper bound on trials for this cell.
    pub max_trials: usize,
    /// Trials added per adaptive refinement step.
    pub batch: usize,
    /// Early-stopping rule; `None` runs exactly `max_trials` trials.
    pub stop: Option<StopRule>,
}

impl TrialBudget {
    /// A fixed budget: exactly `trials` trials, no early stopping.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn fixed(trials: usize) -> Self {
        assert!(trials > 0, "at least one trial is required");
        TrialBudget {
            min_trials: trials,
            max_trials: trials,
            batch: trials,
            stop: None,
        }
    }

    /// An adaptive budget between `min_trials` and `max_trials`, growing in
    /// steps of `batch`, cut off early by `rule`.
    ///
    /// # Panics
    ///
    /// Panics if `min_trials` is zero, `batch` is zero, or
    /// `max_trials < min_trials`.
    pub fn adaptive(min_trials: usize, max_trials: usize, batch: usize, rule: StopRule) -> Self {
        assert!(min_trials > 0, "at least one trial is required");
        assert!(batch > 0, "the batch size must be positive");
        assert!(
            max_trials >= min_trials,
            "max_trials must be at least min_trials"
        );
        TrialBudget {
            min_trials,
            max_trials,
            batch,
            stop: Some(rule),
        }
    }
}

/// One cell of the campaign grid: a benchmark under a fault model at an
/// operating point, with a trial budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Index into [`CampaignSpec::benchmarks`].
    pub benchmark: usize,
    /// The fault model of this cell.
    pub model: FaultModel,
    /// The operating point of this cell.
    pub point: OperatingPoint,
    /// How many Monte-Carlo trials to run.
    pub budget: TrialBudget,
}

/// A full campaign: named, seeded, with a benchmark table and a list of
/// cells over it.
///
/// Cell order matters: the per-trial fault-injection seeds are derived
/// from `(seed, cell index, trial index)`, so inserting a cell in the
/// middle re-seeds everything after it (and invalidates checkpoints — the
/// [`CampaignSpec::fingerprint`] catches that).
#[derive(Clone)]
pub struct CampaignSpec {
    /// Human-readable campaign name (also stored in checkpoints).
    pub name: String,
    /// The campaign master seed.
    pub seed: u64,
    benchmarks: Vec<SharedBenchmark>,
    cells: Vec<CellSpec>,
}

impl std::fmt::Debug for CampaignSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignSpec")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field(
                "benchmarks",
                &self.benchmarks.iter().map(|b| b.name()).collect::<Vec<_>>(),
            )
            .field("cells", &self.cells)
            .finish()
    }
}

impl CampaignSpec {
    /// An empty campaign.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        CampaignSpec {
            name: name.into(),
            seed,
            benchmarks: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Registers a benchmark and returns its index for use in cells.
    pub fn add_benchmark(&mut self, benchmark: impl Benchmark + Send + Sync + 'static) -> usize {
        self.add_shared_benchmark(Arc::new(benchmark))
    }

    /// Registers an already-shared benchmark and returns its index.
    pub fn add_shared_benchmark(&mut self, benchmark: SharedBenchmark) -> usize {
        self.benchmarks.push(benchmark);
        self.benchmarks.len() - 1
    }

    /// Appends one cell and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the cell references an unregistered benchmark.
    pub fn add_cell(&mut self, cell: CellSpec) -> usize {
        assert!(
            cell.benchmark < self.benchmarks.len(),
            "cell references benchmark {} but only {} are registered",
            cell.benchmark,
            self.benchmarks.len()
        );
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Appends the full cross product `benchmarks × models × points` with a
    /// shared budget, and returns the range of new cell indices (cells are
    /// appended benchmark-major, then model, then point).
    pub fn add_grid(
        &mut self,
        benchmarks: &[usize],
        models: &[FaultModel],
        points: &[OperatingPoint],
        budget: TrialBudget,
    ) -> Range<usize> {
        let start = self.cells.len();
        for &benchmark in benchmarks {
            for &model in models {
                for &point in points {
                    self.add_cell(CellSpec {
                        benchmark,
                        model,
                        point,
                        budget,
                    });
                }
            }
        }
        start..self.cells.len()
    }

    /// Appends one cell per frequency (keeping voltage and noise from
    /// `base_point`) and returns the range of new cell indices — the
    /// campaign equivalent of `sfi_core::experiment::frequency_sweep`.
    pub fn add_frequency_sweep(
        &mut self,
        benchmark: usize,
        model: FaultModel,
        base_point: OperatingPoint,
        freqs_mhz: &[f64],
        budget: TrialBudget,
    ) -> Range<usize> {
        let start = self.cells.len();
        for &f in freqs_mhz {
            self.add_cell(CellSpec {
                benchmark,
                model,
                point: base_point.at_frequency(f),
                budget,
            });
        }
        start..self.cells.len()
    }

    /// The registered benchmarks.
    pub fn benchmarks(&self) -> &[SharedBenchmark] {
        &self.benchmarks
    }

    /// The campaign cells.
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }

    /// A structural fingerprint of the campaign (FNV-1a over the name,
    /// seed, benchmark names and every cell's parameters).  Checkpoints
    /// store it and refuse to resume a campaign whose spec changed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.name.as_bytes());
        h.u64(self.seed);
        h.u64(self.benchmarks.len() as u64);
        for b in &self.benchmarks {
            h.bytes(b.name().as_bytes());
            h.u64(b.dmem_words() as u64);
            h.u64(b.program().len() as u64);
        }
        h.u64(self.cells.len() as u64);
        for cell in &self.cells {
            h.u64(cell.benchmark as u64);
            match cell.model {
                FaultModel::None => h.u64(0),
                FaultModel::FixedProbability(p) => {
                    h.u64(1);
                    h.u64(p.to_bits());
                }
                FaultModel::StaPeriodViolation => h.u64(2),
                FaultModel::StaWithNoise => h.u64(3),
                FaultModel::StatisticalDta => h.u64(4),
            }
            h.u64(cell.point.freq_mhz().to_bits());
            h.u64(cell.point.vdd().to_bits());
            h.u64(cell.point.noise().sigma_mv().to_bits());
            h.u64(cell.budget.min_trials as u64);
            h.u64(cell.budget.max_trials as u64);
            h.u64(cell.budget.batch as u64);
            match cell.budget.stop {
                None => h.u64(0),
                Some(rule) => {
                    h.u64(match rule.metric {
                        StopMetric::CorrectFraction => 1,
                        StopMetric::FinishedFraction => 2,
                    });
                    h.u64(rule.half_width.to_bits());
                    h.u64(rule.z.to_bits());
                }
            }
        }
        h.finish()
    }
}

/// FNV-1a, 64 bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_kernels::median::MedianBenchmark;

    fn spec_with_cells() -> CampaignSpec {
        let mut spec = CampaignSpec::new("unit", 7);
        let b = spec.add_benchmark(MedianBenchmark::new(21, 3));
        spec.add_grid(
            &[b],
            &[FaultModel::None, FaultModel::StatisticalDta],
            &[
                OperatingPoint::new(700.0, 0.7),
                OperatingPoint::new(750.0, 0.7),
            ],
            TrialBudget::fixed(4),
        );
        spec
    }

    #[test]
    fn grid_builds_the_cross_product() {
        let spec = spec_with_cells();
        assert_eq!(spec.cells().len(), 4);
        assert_eq!(spec.benchmarks().len(), 1);
        assert_eq!(spec.cells()[0].model, FaultModel::None);
        assert_eq!(spec.cells()[1].point.freq_mhz(), 750.0);
        assert_eq!(spec.cells()[2].model, FaultModel::StatisticalDta);
    }

    #[test]
    fn frequency_sweep_cells_take_the_base_noise() {
        let mut spec = CampaignSpec::new("sweep", 1);
        let b = spec.add_benchmark(MedianBenchmark::new(21, 3));
        let base = OperatingPoint::new(700.0, 0.7).with_noise_sigma_mv(10.0);
        let range = spec.add_frequency_sweep(
            b,
            FaultModel::StatisticalDta,
            base,
            &[650.0, 700.0, 750.0],
            TrialBudget::fixed(2),
        );
        assert_eq!(range, 0..3);
        assert_eq!(spec.cells()[2].point.freq_mhz(), 750.0);
        assert_eq!(spec.cells()[2].point.noise().sigma_mv(), 10.0);
    }

    #[test]
    fn fingerprint_tracks_structural_changes() {
        let a = spec_with_cells();
        let b = spec_with_cells();
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = spec_with_cells();
        c.seed = 8;
        assert_ne!(a.fingerprint(), c.fingerprint());

        let mut d = spec_with_cells();
        let bench = d.add_benchmark(MedianBenchmark::new(21, 3));
        assert_ne!(a.fingerprint(), d.fingerprint());
        d.add_cell(CellSpec {
            benchmark: bench,
            model: FaultModel::StaPeriodViolation,
            point: OperatingPoint::new(800.0, 0.7),
            budget: TrialBudget::adaptive(2, 8, 2, StopRule::correct_within(0.1)),
        });
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    #[should_panic(expected = "references benchmark")]
    fn cell_with_unknown_benchmark_panics() {
        let mut spec = CampaignSpec::new("bad", 0);
        spec.add_cell(CellSpec {
            benchmark: 0,
            model: FaultModel::None,
            point: OperatingPoint::new(700.0, 0.7),
            budget: TrialBudget::fixed(1),
        });
    }

    #[test]
    #[should_panic(expected = "max_trials must be at least min_trials")]
    fn inverted_budget_panics() {
        TrialBudget::adaptive(8, 4, 2, StopRule::correct_within(0.1));
    }

    #[test]
    fn stop_rule_tightens_with_samples() {
        let rule = StopRule::correct_within(0.2);
        let mut stats = CellStats::new();
        assert!(!rule.is_satisfied(&stats), "unsampled cells must not stop");
        for _ in 0..200 {
            stats.push(&sfi_core::TrialResult {
                finished: true,
                correct: true,
                output_error: 0.0,
                fi_rate_per_kcycle: 0.0,
                cycles: 10,
            });
        }
        assert!(rule.is_satisfied(&stats));
    }
}
