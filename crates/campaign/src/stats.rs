//! Streaming aggregation of Monte-Carlo trials: Welford mean/variance for
//! continuous metrics and Wilson score intervals for the binomial
//! finished/correct fractions.
//!
//! Everything here is a pure fold over trial results in trial-index order,
//! so aggregates are bit-identical no matter which worker thread produced
//! which trial.

use sfi_core::TrialResult;

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable single-pass accumulation; the zero-sample state is
/// explicit (`mean()` and friends return `None`) instead of leaking NaN.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one sample into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of accumulated samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean, or `None` with no samples.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// The unbiased sample variance, or `None` with fewer than two samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// The sample standard deviation, or `None` with fewer than two samples.
    pub fn sample_stddev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// The standard error of the mean, or `None` with fewer than two
    /// samples.
    pub fn standard_error(&self) -> Option<f64> {
        self.sample_variance()
            .map(|v| (v / self.count as f64).sqrt())
    }
}

/// A Wilson score confidence interval for a binomial proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilsonInterval {
    /// Center of the interval (the shrunk point estimate).
    pub center: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl WilsonInterval {
    /// Lower bound, clamped to `[0, 1]`.
    pub fn lo(&self) -> f64 {
        (self.center - self.half_width).max(0.0)
    }

    /// Upper bound, clamped to `[0, 1]`.
    pub fn hi(&self) -> f64 {
        (self.center + self.half_width).min(1.0)
    }
}

/// The Wilson score interval for `successes` out of `trials` at critical
/// value `z` (e.g. 1.96 for 95 %).
///
/// With zero trials the proportion is unknown: the interval is the whole
/// `[0, 1]` range (center 0.5, half-width 0.5) rather than NaN, so
/// adaptive stopping rules never cut off an unsampled cell.
///
/// # Panics
///
/// Panics if `successes > trials` or `z` is not positive and finite.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> WilsonInterval {
    assert!(
        successes <= trials,
        "{successes} successes out of {trials} trials"
    );
    assert!(
        z > 0.0 && z.is_finite(),
        "z must be positive and finite, got {z}"
    );
    if trials == 0 {
        return WilsonInterval {
            center: 0.5,
            half_width: 0.5,
        };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half_width = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    WilsonInterval { center, half_width }
}

/// Streaming summary of one campaign cell: binomial counters for the
/// finished/correct fractions plus Welford accumulators for FI rate,
/// cycles and the output error of finished runs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellStats {
    trials: u64,
    finished: u64,
    correct: u64,
    fi_rate: Welford,
    cycles: Welford,
    output_error: Welford,
}

impl CellStats {
    /// An empty cell summary.
    pub fn new() -> Self {
        CellStats::default()
    }

    /// Folds one trial into the summary.
    pub fn push(&mut self, trial: &TrialResult) {
        self.trials += 1;
        self.fi_rate.push(trial.fi_rate_per_kcycle);
        self.cycles.push(trial.cycles as f64);
        if trial.finished {
            self.finished += 1;
            // The paper reports the output error of the runs that survived.
            // Crashed runs carry NaN, and so do finished runs whose output
            // region was unreadable (`Benchmark::try_output_error` returned
            // `None`); both are "machine state corrupt", not a measurable
            // output quality, so neither may poison the accumulator.
            if !trial.output_error.is_nan() {
                self.output_error.push(trial.output_error);
            }
        }
        if trial.correct {
            self.correct += 1;
        }
    }

    /// Folds a slice of trials (in the given order) into the summary.
    pub fn from_trials(trials: &[TrialResult]) -> Self {
        let mut stats = CellStats::new();
        for t in trials {
            stats.push(t);
        }
        stats
    }

    /// Number of aggregated trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of trials that ran to completion.
    pub fn finished(&self) -> u64 {
        self.finished
    }

    /// Number of trials with an exactly correct output.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Fraction of trials that finished (0 for the empty summary, matching
    /// `ExperimentSummary`).
    pub fn finished_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.finished as f64 / self.trials as f64
        }
    }

    /// Fraction of trials with a fully correct output (0 for the empty
    /// summary).
    pub fn correct_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.correct as f64 / self.trials as f64
        }
    }

    /// Wilson interval of the finished fraction at critical value `z`.
    pub fn finished_interval(&self, z: f64) -> WilsonInterval {
        wilson_interval(self.finished, self.trials, z)
    }

    /// Wilson interval of the correct fraction at critical value `z`.
    pub fn correct_interval(&self, z: f64) -> WilsonInterval {
        wilson_interval(self.correct, self.trials, z)
    }

    /// Mean fault-injection rate (faults per kCycle), or `None` with no
    /// trials.
    pub fn mean_fi_rate(&self) -> Option<f64> {
        self.fi_rate.mean()
    }

    /// Mean cycle count, or `None` with no trials.
    pub fn mean_cycles(&self) -> Option<f64> {
        self.cycles.mean()
    }

    /// Mean output error over the finished trials with a readable output,
    /// or `None` when there were none.
    pub fn mean_output_error(&self) -> Option<f64> {
        self.output_error.mean()
    }

    /// The Welford accumulator of the output error of finished trials
    /// with a readable output.
    pub fn output_error_stats(&self) -> &Welford {
        &self.output_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(finished: bool, correct: bool, err: f64) -> TrialResult {
        TrialResult {
            finished,
            correct,
            output_error: err,
            fi_rate_per_kcycle: 2.0,
            cycles: 100,
        }
    }

    #[test]
    fn welford_matches_two_pass_computation() {
        let xs = [1.5, 2.25, -3.0, 0.125, 10.0, 4.5];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean().unwrap() - mean).abs() < 1e-12);
        assert!((w.sample_variance().unwrap() - var).abs() < 1e-12);
        assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn welford_empty_and_single_sample() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.sample_variance(), None);
        assert_eq!(w.sample_stddev(), None);
        assert_eq!(w.standard_error(), None);
        w.push(4.0);
        assert_eq!(w.mean(), Some(4.0));
        assert_eq!(w.sample_variance(), None, "variance needs two samples");
    }

    #[test]
    fn wilson_zero_trials_is_the_unit_interval() {
        let iv = wilson_interval(0, 0, 1.96);
        assert_eq!(iv.center, 0.5);
        assert_eq!(iv.half_width, 0.5);
        assert_eq!(iv.lo(), 0.0);
        assert_eq!(iv.hi(), 1.0);
    }

    #[test]
    fn wilson_shrinks_with_more_trials_and_stays_in_bounds() {
        let small = wilson_interval(9, 10, 1.96);
        let large = wilson_interval(900, 1000, 1.96);
        assert!(large.half_width < small.half_width);
        for (s, n) in [(0u64, 10u64), (10, 10), (5, 10), (1, 3)] {
            let iv = wilson_interval(s, n, 1.96);
            assert!(iv.lo() >= 0.0 && iv.hi() <= 1.0);
            assert!(iv.lo() <= s as f64 / n as f64 && s as f64 / n as f64 <= iv.hi());
        }
    }

    #[test]
    fn wilson_extreme_proportions_have_nonzero_width() {
        // The normal approximation would collapse to zero width at p = 1;
        // Wilson keeps a usable interval, which is what makes it suitable
        // for the all-correct cells near the STA limit.
        let iv = wilson_interval(20, 20, 1.96);
        assert!(iv.half_width > 0.0);
        assert!(iv.hi() <= 1.0);
    }

    #[test]
    fn cell_stats_zero_trials() {
        let stats = CellStats::new();
        assert_eq!(stats.trials(), 0);
        assert_eq!(stats.finished_fraction(), 0.0);
        assert_eq!(stats.correct_fraction(), 0.0);
        assert_eq!(stats.mean_output_error(), None);
        assert_eq!(stats.mean_fi_rate(), None);
        assert_eq!(stats.mean_cycles(), None);
        assert_eq!(stats.correct_interval(1.96).half_width, 0.5);
    }

    #[test]
    fn cell_stats_none_finished_has_no_output_error() {
        let stats =
            CellStats::from_trials(&[trial(false, false, f64::NAN), trial(false, false, f64::NAN)]);
        assert_eq!(stats.trials(), 2);
        assert_eq!(stats.finished_fraction(), 0.0);
        assert_eq!(stats.mean_output_error(), None, "no NaN leaks out");
        assert_eq!(stats.mean_fi_rate(), Some(2.0));
    }

    #[test]
    fn cell_stats_mixed_trials() {
        let stats = CellStats::from_trials(&[
            trial(true, true, 0.0),
            trial(true, false, 0.5),
            trial(false, false, f64::NAN),
        ]);
        assert_eq!(stats.finished(), 2);
        assert_eq!(stats.correct(), 1);
        assert!((stats.finished_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.correct_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.mean_output_error(), Some(0.25));
    }

    #[test]
    fn finished_trial_with_unreadable_output_does_not_poison_the_mean() {
        // A user kernel whose output region became unreadable reports a
        // finished trial with `output_error = NaN`; it counts towards the
        // finished fraction but not towards the output-error mean.
        let stats = CellStats::from_trials(&[
            trial(true, true, 0.0),
            trial(true, false, f64::NAN),
            trial(true, false, 0.5),
        ]);
        assert_eq!(stats.finished(), 3);
        assert_eq!(stats.mean_output_error(), Some(0.25), "NaN excluded");
        assert_eq!(stats.output_error_stats().count(), 2);
    }

    #[test]
    #[should_panic(expected = "successes out of")]
    fn wilson_rejects_impossible_counts() {
        wilson_interval(3, 2, 1.96);
    }
}
