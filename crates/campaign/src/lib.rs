//! Parallel, resumable Monte-Carlo campaign engine for the statistical
//! fault-injection flow.
//!
//! The paper's methodology is "at least 100 simulations per data point"
//! over a grid of benchmark × fault-model × operating-point.  The one-shot
//! `sfi_core::experiment` API runs such grids one trial at a time on one
//! thread; this crate turns them into first-class *campaigns*:
//!
//! * [`CampaignSpec`] — the grid: a benchmark table plus cells of
//!   (benchmark, fault model, operating point, trial budget), with
//!   builders for cross products and frequency sweeps.
//! * [`CampaignEngine`] — a work-stealing pool of std threads over a
//!   sharded job queue.  Per-trial seeds come from
//!   `sfi_core::experiment::derive_trial_seed`, adaptive decisions happen
//!   only at batch boundaries, and aggregates are folded in trial order,
//!   so results are **bit-identical for any thread count**.
//! * [`stats`] — streaming aggregation: Welford mean/variance for the
//!   continuous metrics and Wilson score intervals for the binomial
//!   finished/correct fractions, with explicit zero-sample states.
//! * [`TrialBudget`] / [`StopRule`] — adaptive sampling: a cell stops as
//!   soon as its confidence interval is tighter than the configured
//!   half-width, instead of always burning the full budget.
//! * [`poff`] — adaptive point-of-first-failure search by bisection on
//!   the failure transition, typically 3–5× fewer cells than the fixed
//!   `frequency_grid` sweep at equal resolution.
//! * [`checkpoint`] — JSON checkpoints written atomically after every
//!   completed cell; re-running the same spec resumes instead of
//!   recomputing, and the same format serves as the result export the
//!   figure binaries consume.
//!
//! # Quickstart
//!
//! ```
//! use sfi_campaign::{CampaignEngine, CampaignSpec, TrialBudget};
//! use sfi_core::study::{CaseStudy, CaseStudyConfig};
//! use sfi_core::FaultModel;
//! use sfi_fault::OperatingPoint;
//! use sfi_kernels::median::MedianBenchmark;
//!
//! let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
//! let sta = study.sta_limit_mhz(0.7);
//!
//! let mut spec = CampaignSpec::new("quickstart", 7);
//! let median = spec.add_benchmark(MedianBenchmark::new(21, 3));
//! spec.add_grid(
//!     &[median],
//!     &[FaultModel::None, FaultModel::StatisticalDta],
//!     &[OperatingPoint::new(sta * 0.95, 0.7), OperatingPoint::new(sta * 1.3, 0.7)],
//!     TrialBudget::fixed(3),
//! );
//!
//! let result = CampaignEngine::new().run(&study, &spec);
//! assert_eq!(result.cells.len(), 4);
//! // Fault-free cells are always fully correct.
//! assert_eq!(result.cells[0].stats.correct_fraction(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod poff;
pub mod spec;
pub mod stats;

// The JSON implementation moved to `sfi_core::json` so the core
// characterization cache can use it too; checkpoints and existing
// `sfi_campaign::json::...` paths keep working through this re-export.
pub use sfi_core::json;

pub use engine::{CampaignEngine, CampaignResult, CellResult, EngineMetrics};
pub use poff::{adaptive_poff, PoffOutcome, PoffSearch};
pub use spec::{CampaignSpec, CellSpec, SharedBenchmark, StopMetric, StopRule, TrialBudget};
pub use stats::{wilson_interval, CellStats, Welford, WilsonInterval};
