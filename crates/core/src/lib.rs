//! Statistical fault injection for impact-evaluation of timing errors on
//! application performance.
//!
//! This is the top-level crate of the workspace: it wires the gate-level
//! characterization (`sfi-netlist` + `sfi-timing`), the cycle-accurate ISS
//! (`sfi-isa` + `sfi-cpu`), the fault-injection models (`sfi-fault`) and the
//! benchmark kernels (`sfi-kernels`) into the experiment flow of the DAC
//! 2016 paper:
//!
//! 1. [`study::CaseStudy`] builds the 32-bit execution-stage datapath,
//!    applies the synthesis-like timing budgets, calibrates the static
//!    timing limit to 707 MHz @ 0.7 V, and runs the DTA characterization
//!    kernel at every supply voltage of interest.
//! 2. [`experiment`] runs Monte-Carlo campaigns of a benchmark under a
//!    chosen fault model and operating point and aggregates the paper's
//!    four metrics: probability to *finish*, probability to be *correct*,
//!    *FI rate* (faults / kCycle) and *output error*.
//! 3. [`experiment::frequency_sweep`] sweeps the clock frequency through
//!    the transition region and locates the *point of first failure*
//!    (PoFF).
//! 4. [`power`] converts frequency-over-scaling gains into equivalent
//!    supply-voltage reductions and core-power savings (the error-vs-power
//!    trade-off of Fig. 7).
//!
//! The experiment functions here are the *sequential, one-shot* layer:
//! they run cells trial by trial via [`experiment::run_single_trial`]
//! with [`experiment::derive_trial_seed`] seeding.  The `sfi-campaign`
//! crate builds the parallel, adaptive, resumable campaign engine on the
//! same primitives — a single-cell campaign and a
//! [`experiment::run_experiment`] call produce identical trials.
//!
//! # Quickstart
//!
//! ```
//! use sfi_core::study::{CaseStudy, CaseStudyConfig};
//! use sfi_core::experiment::{run_experiment, FaultModel};
//! use sfi_fault::OperatingPoint;
//! use sfi_kernels::median::MedianBenchmark;
//!
//! // A scaled-down study keeps the doc-test fast; the defaults reproduce
//! // the paper's 32-bit core.
//! let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
//! let bench = MedianBenchmark::new(21, 7);
//! let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 0.9, 0.7);
//! let summary = run_experiment(&study, &bench, FaultModel::StatisticalDta, point, 3, 1);
//! assert_eq!(summary.finished_fraction(), 1.0);
//! assert_eq!(summary.correct_fraction(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod experiment;
pub mod json;
pub mod power;
pub mod study;

pub use experiment::{
    derive_trial_seed, frequency_sweep, point_of_first_failure, run_experiment, run_single_trial,
    watchdog_cycles, ExperimentSummary, FaultModel, SweepPoint, TrialContext, TrialResult,
};
pub use power::{PowerModel, TradeoffPoint};
pub use study::{CaseStudy, CaseStudyConfig};
