//! Core power model and the error-vs-power trade-off analysis (Fig. 7).
//!
//! The paper translates potential frequency-over-scaling gains (at a fixed
//! nominal clock of 707 MHz) into an equivalent reduction of the supply
//! voltage, and computes the corresponding active-power savings by
//! quadratic scaling between two post-layout reference points:
//! 10.9 µW/MHz @ 0.6 V and 15.0 µW/MHz @ 0.7 V, with 2 % and 3 % leakage
//! respectively.

use sfi_timing::VddDelayCurve;

/// Quadratically interpolated active-power model with leakage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// (voltage, active µW/MHz, leakage fraction) at the low reference.
    low_ref: (f64, f64, f64),
    /// (voltage, active µW/MHz, leakage fraction) at the high reference.
    high_ref: (f64, f64, f64),
}

impl PowerModel {
    /// The paper's 28 nm reference points.
    pub fn paper_28nm() -> Self {
        PowerModel {
            low_ref: (0.6, 10.9, 0.02),
            high_ref: (0.7, 15.0, 0.03),
        }
    }

    /// Active core power in µW/MHz at supply voltage `vdd`, following the
    /// quadratic `P ∝ V²` scaling the paper uses between its two reference
    /// points.
    pub fn active_uw_per_mhz(&self, vdd: f64) -> f64 {
        // Fit a single coefficient through both reference points (least
        // squares over the two samples of P = k·V²).
        let (v0, p0, _) = self.low_ref;
        let (v1, p1, _) = self.high_ref;
        let k = (p0 * v0 * v0 + p1 * v1 * v1) / (v0.powi(4) + v1.powi(4));
        k * vdd * vdd
    }

    /// Leakage fraction at supply voltage `vdd` (linear interpolation,
    /// clamped to the reference range).
    pub fn leakage_fraction(&self, vdd: f64) -> f64 {
        let (v0, _, l0) = self.low_ref;
        let (v1, _, l1) = self.high_ref;
        let t = ((vdd - v0) / (v1 - v0)).clamp(0.0, 1.0);
        l0 + t * (l1 - l0)
    }

    /// Total core power in µW at the given voltage and clock frequency.
    pub fn total_power_uw(&self, vdd: f64, freq_mhz: f64) -> f64 {
        let active = self.active_uw_per_mhz(vdd) * freq_mhz;
        active / (1.0 - self.leakage_fraction(vdd))
    }

    /// Core power at (`vdd`, `freq_mhz`) normalized to the nominal
    /// operating point (0.7 V at the same frequency).
    pub fn normalized_power(&self, vdd: f64, freq_mhz: f64) -> f64 {
        self.total_power_uw(vdd, freq_mhz) / self.total_power_uw(0.7, freq_mhz)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::paper_28nm()
    }
}

/// Finds the supply voltage whose slow-down is equivalent to a
/// frequency-over-scaling gain at the nominal voltage.
///
/// If the application tolerates running at `gain`× the nominal frequency at
/// `vdd_nominal`, the same timing slack can instead be spent by lowering the
/// supply to the returned voltage while keeping the nominal clock — this is
/// how Fig. 7 converts quality loss into power savings.
///
/// # Panics
///
/// Panics if `gain < 1.0` is not finite or `vdd_nominal` is not covered by
/// the curve.
pub fn equivalent_voltage_for_gain(curve: &VddDelayCurve, vdd_nominal: f64, gain: f64) -> f64 {
    assert!(
        gain.is_finite() && gain >= 1.0,
        "gain must be >= 1.0, got {gain}"
    );
    let target_factor = curve.delay_factor(vdd_nominal) * gain;
    // The delay factor decreases monotonically with voltage: bisect.
    let (mut lo, mut hi) = (0.45, vdd_nominal);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if curve.delay_factor(mid) > target_factor {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One point of the error-vs-power trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Equivalent supply voltage.
    pub vdd: f64,
    /// Core power normalized to the nominal operating point.
    pub normalized_power: f64,
    /// Average relative output error (0.0–1.0) measured at this point.
    pub average_relative_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_netlist::VoltageScaling;

    #[test]
    fn reference_points_are_reproduced() {
        let m = PowerModel::paper_28nm();
        // The single-coefficient quadratic fit passes close to both
        // published reference points.
        assert!((m.active_uw_per_mhz(0.6) - 10.9).abs() < 0.3);
        assert!((m.active_uw_per_mhz(0.7) - 15.0).abs() < 0.3);
        assert!((m.leakage_fraction(0.6) - 0.02).abs() < 1e-12);
        assert!((m.leakage_fraction(0.7) - 0.03).abs() < 1e-12);
        assert_eq!(PowerModel::default(), m);
    }

    #[test]
    fn power_decreases_with_voltage() {
        let m = PowerModel::paper_28nm();
        assert!(m.total_power_uw(0.65, 707.0) < m.total_power_uw(0.7, 707.0));
        assert!((m.normalized_power(0.7, 707.0) - 1.0).abs() < 1e-12);
        let norm_065 = m.normalized_power(0.65, 707.0);
        assert!(norm_065 > 0.8 && norm_065 < 0.95);
    }

    #[test]
    fn paper_power_saving_magnitudes() {
        // The paper quotes 0.93x power at 0.667 V and 0.88x at 0.657 V.
        let m = PowerModel::paper_28nm();
        let p_667 = m.normalized_power(0.667, 707.0);
        let p_657 = m.normalized_power(0.657, 707.0);
        assert!((p_667 - 0.93).abs() < 0.03, "0.667 V -> {p_667:.3}");
        assert!((p_657 - 0.88).abs() < 0.03, "0.657 V -> {p_657:.3}");
    }

    #[test]
    fn equivalent_voltage_is_monotone_in_gain() {
        let curve = VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5);
        let v_small = equivalent_voltage_for_gain(&curve, 0.7, 1.02);
        let v_large = equivalent_voltage_for_gain(&curve, 0.7, 1.10);
        assert!(v_small < 0.7);
        assert!(v_large < v_small);
        // No gain means no voltage reduction.
        let v_none = equivalent_voltage_for_gain(&curve, 0.7, 1.0);
        assert!((v_none - 0.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "gain must be")]
    fn invalid_gain_panics() {
        let curve = VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5);
        equivalent_voltage_for_gain(&curve, 0.7, 0.5);
    }
}
