//! The characterized case study: datapath, timing budgets, calibration and
//! per-voltage DTA characterizations.

use sfi_fault::{
    DtaFaultTable, FixedProbabilityModel, OperatingPoint, StaPeriodViolationModel,
    StaWithNoiseModel, StatisticalDtaModel,
};
use sfi_netlist::alu::AluDatapath;
use sfi_netlist::{DelayModel, VoltageScaling};
use sfi_timing::{
    calibrate_delay_model_with_multipliers, characterize_alu_with_multipliers,
    synthesis_node_multipliers, CharacterizationConfig, OperandDistribution, StaticTimingAnalysis,
    TimingCharacterization, UnitBudgets, VddDelayCurve,
};
use std::sync::Arc;

/// Configuration of the case study.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyConfig {
    /// Operand width of the execution-stage datapath (32 in the paper).
    pub alu_width: usize,
    /// Target static timing limit at the nominal voltage, in MHz.
    pub target_fmax_mhz: f64,
    /// Nominal supply voltage used for calibration.
    pub nominal_vdd: f64,
    /// Supply voltages to characterize (the paper uses 0.7 V and 0.8 V).
    pub voltages: Vec<f64>,
    /// Characterization cycles per ALU instruction (≈ 8 kCycles total in
    /// the paper).
    pub cycles_per_op: usize,
    /// Synthesis-like per-unit timing budgets.
    pub budgets: UnitBudgets,
    /// Seed of the characterization kernel's operand randomization.
    pub seed: u64,
}

impl CaseStudyConfig {
    /// The paper's case study: 32-bit datapath, 707 MHz STA limit at 0.7 V,
    /// characterizations at 0.7 V and 0.8 V.
    pub fn paper() -> Self {
        CaseStudyConfig {
            alu_width: 32,
            target_fmax_mhz: 707.0,
            nominal_vdd: 0.7,
            voltages: vec![0.7, 0.8],
            cycles_per_op: 512,
            budgets: UnitBudgets::paper_defaults(),
            seed: 0xDAC_2016,
        }
    }

    /// A scaled-down configuration (8-bit datapath, short characterization)
    /// for unit tests and doc-tests.
    pub fn fast_for_tests() -> Self {
        CaseStudyConfig {
            alu_width: 8,
            cycles_per_op: 48,
            voltages: vec![0.7],
            ..CaseStudyConfig::paper()
        }
    }
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The fully characterized case-study hardware.
///
/// Owns the gate-level ALU datapath, the calibrated delay model, the fitted
/// Vdd–delay curve, and one [`TimingCharacterization`] (CDF set) per
/// configured supply voltage — everything the fault models need.
///
/// The characterization data is held behind `Arc`s together with the
/// derived per-voltage artifacts the injectors consume (the STA endpoint
/// delays of models B/B+ and the flattened [`DtaFaultTable`] of model C),
/// so the per-trial model constructors ([`CaseStudy::model_b`],
/// [`CaseStudy::model_b_plus`], [`CaseStudy::model_c`]) only bump
/// reference counts — they never copy CDFs.  Cloning a `CaseStudy` is
/// correspondingly cheap.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    config: CaseStudyConfig,
    alu: AluDatapath,
    scaling: VoltageScaling,
    delays: DelayModel,
    node_multipliers: Vec<f64>,
    curve: Arc<VddDelayCurve>,
    voltages: Vec<VoltageData>,
    cache_hit: bool,
}

/// Everything derived from one supply voltage's characterization, shared
/// by every injector built for that voltage.
#[derive(Debug, Clone)]
struct VoltageData {
    vdd: f64,
    characterization: Arc<TimingCharacterization>,
    /// Per-endpoint STA worst-case delays (models B and B+).
    sta_delays: Arc<[f64]>,
    /// Flattened per-instruction CDF table (model C).
    dta_table: Arc<DtaFaultTable>,
}

impl VoltageData {
    fn new(vdd: f64, characterization: TimingCharacterization) -> Self {
        let characterization = Arc::new(characterization);
        let sta_delays: Arc<[f64]> = (0..characterization.endpoint_count())
            .map(|e| characterization.sta_endpoint_delay_ps(e))
            .collect();
        let dta_table = Arc::new(DtaFaultTable::new(Arc::clone(&characterization)));
        VoltageData {
            vdd,
            characterization,
            sta_delays,
            dta_table,
        }
    }
}

impl CaseStudy {
    /// Builds and characterizes the case study.
    ///
    /// This is the expensive step of the flow (it runs the gate-level DTA
    /// kernel once per instruction and voltage); everything downstream
    /// reuses the extracted CDFs.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero width, no
    /// voltages, invalid budgets, …).
    pub fn build(config: CaseStudyConfig) -> Self {
        Self::build_inner(config, None)
    }

    /// Like [`CaseStudy::build`], but with a persistent characterization
    /// cache in `cache_dir` (see [`crate::cache`]).
    ///
    /// On a cache hit the expensive gate-level DTA characterization is
    /// skipped entirely and the CDF sets are restored bit-identically from
    /// disk; on a miss they are computed as usual and written back
    /// atomically.  [`CaseStudy::characterization_cache_hit`] reports which
    /// happened.  Cache *write* failures are non-fatal (reported on
    /// stderr): a read-only cache directory must not kill the build.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CaseStudy::build`].
    pub fn build_cached(config: CaseStudyConfig, cache_dir: impl AsRef<std::path::Path>) -> Self {
        Self::build_inner(config, Some(cache_dir.as_ref()))
    }

    fn build_inner(config: CaseStudyConfig, cache_dir: Option<&std::path::Path>) -> Self {
        assert!(
            !config.voltages.is_empty(),
            "at least one supply voltage must be characterized"
        );
        let build_span = sfi_obs::Span::begin("study_build", "core")
            .arg("voltages", config.voltages.len() as u64)
            .arg("alu_width", config.alu_width as u64);
        let scaling = VoltageScaling::default_28nm();
        let alu = AluDatapath::build(config.alu_width);
        let base_delays = DelayModel::default_28nm();
        let (node_multipliers, delays) = {
            let _span = build_span.child("calibrate_delay_model", "core");
            let node_multipliers = synthesis_node_multipliers(
                &alu,
                &base_delays,
                &scaling,
                config.nominal_vdd,
                &config.budgets,
            );
            let delays = calibrate_delay_model_with_multipliers(
                &alu,
                &base_delays,
                &scaling,
                config.target_fmax_mhz,
                config.nominal_vdd,
                Some(&node_multipliers),
            );
            (node_multipliers, delays)
        };
        let curve = VddDelayCurve::from_scaling(&scaling, 0.6, 1.0, 5);
        let restored = {
            let _span = build_span.child("characterization_cache_load", "core");
            cache_dir.and_then(|dir| crate::cache::load(dir, &config))
        };
        let cache_hit = restored.is_some();
        let characterizations = restored.unwrap_or_else(|| {
            let chars: Vec<(f64, TimingCharacterization)> = config
                .voltages
                .iter()
                .map(|&vdd| {
                    let _span = build_span
                        .child("characterize_voltage", "core")
                        .arg("vdd_mv", (vdd * 1000.0).round() as u64);
                    let cfg = CharacterizationConfig {
                        cycles_per_op: config.cycles_per_op,
                        vdd,
                        seed: config.seed,
                        operands: OperandDistribution::UniformFull,
                    };
                    (
                        vdd,
                        characterize_alu_with_multipliers(
                            &alu,
                            &delays,
                            &scaling,
                            &cfg,
                            Some(&node_multipliers),
                        ),
                    )
                })
                .collect();
            if let Some(dir) = cache_dir {
                if let Err(err) = crate::cache::store(dir, &config, &chars) {
                    eprintln!("warning: failed to write characterization cache: {err}");
                }
            }
            chars
        });
        let voltages = {
            let _span = build_span.child("fault_tables", "core");
            characterizations
                .into_iter()
                .map(|(vdd, ch)| VoltageData::new(vdd, ch))
                .collect()
        };
        build_span.finish();
        sfi_obs::span::flush_thread();
        CaseStudy {
            config,
            alu,
            scaling,
            delays,
            node_multipliers,
            curve: Arc::new(curve),
            voltages,
            cache_hit,
        }
    }

    /// Whether the characterizations were restored from the persistent
    /// cache instead of being recomputed (always `false` for
    /// [`CaseStudy::build`]).
    pub fn characterization_cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// The configuration the study was built with.
    pub fn config(&self) -> &CaseStudyConfig {
        &self.config
    }

    /// The gate-level datapath.
    pub fn alu(&self) -> &AluDatapath {
        &self.alu
    }

    /// The calibrated delay model.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delays
    }

    /// The per-node sizing multipliers produced by the timing-budget pass.
    pub fn node_multipliers(&self) -> &[f64] {
        &self.node_multipliers
    }

    /// The fitted delay-vs-Vdd curve.
    pub fn vdd_delay_curve(&self) -> &VddDelayCurve {
        &self.curve
    }

    /// A token identifying this study's shared characterization data:
    /// clones of one built study return the same token (`Arc::ptr_eq`),
    /// independently built studies return different ones.
    /// [`crate::experiment::TrialContext`] uses it to invalidate its
    /// cached injector when trials switch to a different study.
    pub fn share_token(&self) -> &Arc<VddDelayCurve> {
        &self.curve
    }

    /// The voltage-scaling (alpha-power-law) model.
    pub fn voltage_scaling(&self) -> &VoltageScaling {
        &self.scaling
    }

    /// The characterization (CDF set) at supply voltage `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` was not listed in the configuration.
    pub fn characterization(&self, vdd: f64) -> &TimingCharacterization {
        &self.voltage_data(vdd).characterization
    }

    fn voltage_data(&self, vdd: f64) -> &VoltageData {
        self.voltages
            .iter()
            .find(|data| (data.vdd - vdd).abs() < 1e-9)
            .unwrap_or_else(|| {
                panic!("no characterization at {vdd} V; configure it in CaseStudyConfig::voltages")
            })
    }

    /// The static timing limit (MHz) at supply voltage `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` was not characterized.
    pub fn sta_limit_mhz(&self, vdd: f64) -> f64 {
        self.characterization(vdd).sta_limit_mhz()
    }

    /// A fresh STA run at an arbitrary voltage (used by the power model to
    /// translate voltage scaling into equivalent frequency scaling).
    pub fn sta_at(&self, vdd: f64) -> StaticTimingAnalysis {
        let _span =
            sfi_obs::Span::begin("sta", "core").arg("vdd_mv", (vdd * 1000.0).round() as u64);
        StaticTimingAnalysis::run_with_multipliers(
            self.alu.netlist(),
            &self.delays,
            &self.scaling,
            vdd,
            Some(&self.node_multipliers),
        )
    }

    /// Number of fault-injection endpoints (result-register bits).
    pub fn endpoint_count(&self) -> usize {
        self.alu.endpoint_count()
    }

    /// Creates a model A injector (fixed bit-flip probability).
    pub fn model_a(&self, bit_flip_probability: f64, seed: u64) -> FixedProbabilityModel {
        FixedProbabilityModel::new(bit_flip_probability, self.endpoint_count(), seed)
    }

    /// Creates a model B injector (STA period violation) for `point`.
    ///
    /// Allocation-free on the characterization: the STA endpoint delays
    /// are `Arc`-shared with the study.
    pub fn model_b(&self, point: OperatingPoint) -> StaPeriodViolationModel {
        let data = self.voltage_data(point.vdd());
        StaPeriodViolationModel::from_shared(Arc::clone(&data.sta_delays), data.vdd, point)
    }

    /// Creates a model B+ injector (STA + supply noise) for `point`.
    ///
    /// Allocation-free on the characterization: the STA endpoint delays
    /// and the Vdd–delay curve are `Arc`-shared with the study.
    pub fn model_b_plus(&self, point: OperatingPoint, seed: u64) -> StaWithNoiseModel {
        let data = self.voltage_data(point.vdd());
        StaWithNoiseModel::from_shared(
            Arc::clone(&data.sta_delays),
            data.vdd,
            point,
            Arc::clone(&self.curve),
            seed,
        )
    }

    /// Creates a model C injector (statistical DTA CDFs) for `point`.
    ///
    /// Allocation-free on the characterization: the injector shares the
    /// study's flattened [`DtaFaultTable`] and Vdd–delay curve by `Arc`,
    /// so building one injector per Monte-Carlo trial costs two
    /// reference-count bumps instead of a multi-megabyte CDF copy.
    pub fn model_c(&self, point: OperatingPoint, seed: u64) -> StatisticalDtaModel {
        StatisticalDtaModel::from_table(
            Arc::clone(&self.voltage_data(point.vdd()).dta_table),
            point,
            Arc::clone(&self.curve),
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_study() -> CaseStudy {
        CaseStudy::build(CaseStudyConfig::fast_for_tests())
    }

    #[test]
    fn calibration_hits_target() {
        let study = fast_study();
        let sta = study.sta_limit_mhz(0.7);
        assert!(
            (sta - 707.0).abs() < 1.0,
            "STA limit {sta} should be ~707 MHz"
        );
        assert_eq!(study.endpoint_count(), 8);
        assert_eq!(study.config().alu_width, 8);
        assert_eq!(study.node_multipliers().len(), study.alu().netlist().len());
    }

    #[test]
    fn characterization_lookup() {
        let study = fast_study();
        let ch = study.characterization(0.7);
        assert_eq!(ch.vdd(), 0.7);
        assert!(study.vdd_delay_curve().delay_factor(0.65) > 1.0);
        assert!(study.sta_at(0.8).max_frequency_mhz() > study.sta_at(0.7).max_frequency_mhz());
        assert!(study.delay_model().scale() > 0.0);
        assert_eq!(study.voltage_scaling().nominal_vdd(), 0.7);
    }

    #[test]
    fn model_constructors() {
        let study = fast_study();
        let point = OperatingPoint::new(800.0, 0.7).with_noise_sigma_mv(10.0);
        let _ = study.model_a(1e-4, 1);
        let _ = study.model_b(OperatingPoint::new(800.0, 0.7));
        let _ = study.model_b_plus(point, 2);
        let c = study.model_c(point, 3);
        assert_eq!(c.operating_point().freq_mhz(), 800.0);
    }

    #[test]
    fn per_trial_injectors_share_one_fault_table() {
        // The zero-clone guarantee: every model C injector built from the
        // same study (and voltage) points at the same flattened table, so
        // per-trial construction copies no characterization data.
        let study = fast_study();
        let point = OperatingPoint::new(800.0, 0.7).with_noise_sigma_mv(10.0);
        let first = study.model_c(point, 1);
        let second = study.model_c(point.at_frequency(900.0), 2);
        assert!(std::sync::Arc::ptr_eq(
            first.fault_table(),
            second.fault_table()
        ));
        let shifted = first.at_frequency(850.0, 3);
        assert!(std::sync::Arc::ptr_eq(
            first.fault_table(),
            shifted.fault_table()
        ));
    }

    #[test]
    #[should_panic(expected = "no characterization")]
    fn missing_voltage_panics() {
        fast_study().characterization(0.9);
    }
}
