//! Monte-Carlo experiments, frequency sweeps and point-of-first-failure
//! detection.

use crate::study::CaseStudy;
use sfi_cpu::{Core, FaultInjector, NoFaultInjector, RunConfig, RunOutcome};
use sfi_fault::{
    FixedProbabilityModel, OperatingPoint, StaPeriodViolationModel, StaWithNoiseModel,
    StatisticalDtaModel,
};
use sfi_kernels::Benchmark;
use sfi_timing::VddDelayCurve;
use std::sync::Arc;

/// Which fault-injection model an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// No fault injection (golden runs).
    None,
    /// Model A: fixed per-bit flip probability.
    FixedProbability(f64),
    /// Model B: deterministic STA period violation.
    StaPeriodViolation,
    /// Model B+: STA period violation modulated by supply noise.
    StaWithNoise,
    /// Model C: statistical, instruction-aware DTA CDFs.
    StatisticalDta,
}

/// Result of a single Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// Whether the program ran to completion.
    pub finished: bool,
    /// Whether the output was exactly correct (implies `finished`).
    pub correct: bool,
    /// Kernel-specific output error (only meaningful if `finished`).
    pub output_error: f64,
    /// Injected faults per 1000 kernel cycles.
    pub fi_rate_per_kcycle: f64,
    /// Simulated cycles.
    pub cycles: u64,
}

/// Aggregated result of a Monte-Carlo campaign at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSummary {
    /// The individual trials.
    pub trials: Vec<TrialResult>,
}

impl ExperimentSummary {
    /// Fraction of trials that ran to completion.
    pub fn finished_fraction(&self) -> f64 {
        self.fraction(|t| t.finished)
    }

    /// Fraction of trials with an exactly correct output.
    pub fn correct_fraction(&self) -> f64 {
        self.fraction(|t| t.correct)
    }

    /// Mean fault-injection rate (faults per kCycle) over all trials.
    pub fn mean_fi_rate(&self) -> f64 {
        self.mean(|t| t.fi_rate_per_kcycle)
    }

    /// Mean output error over the trials that finished (the paper reports
    /// the output error of the remaining successful runs).
    ///
    /// Returns `NaN` when no trial finished; use
    /// [`ExperimentSummary::checked_mean_output_error`] for an explicit
    /// `Option`.
    pub fn mean_output_error(&self) -> f64 {
        self.checked_mean_output_error().unwrap_or(f64::NAN)
    }

    /// Mean output error over the finished trials with a readable output,
    /// or `None` when there were none (including the zero-trial summary).
    ///
    /// A finished trial can still carry `output_error = NaN` when the
    /// benchmark's output region was unreadable
    /// (`Benchmark::try_output_error` returned `None`); such trials are
    /// machine-state corruption, not a measurable quality, and are
    /// excluded like crashed runs.
    pub fn checked_mean_output_error(&self) -> Option<f64> {
        // A streaming fold in trial order: the same left-to-right summation
        // the collect-then-average implementation performed, minus the
        // intermediate allocation.
        let (sum, count) = self
            .trials
            .iter()
            .filter(|t| t.finished && !t.output_error.is_nan())
            .fold((0.0f64, 0usize), |(sum, count), t| {
                (sum + t.output_error, count + 1)
            });
        (count > 0).then(|| sum / count as f64)
    }

    /// Mean cycle count over all trials.
    pub fn mean_cycles(&self) -> f64 {
        self.mean(|t| t.cycles as f64)
    }

    fn fraction(&self, predicate: impl Fn(&TrialResult) -> bool) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| predicate(t)).count() as f64 / self.trials.len() as f64
    }

    fn mean(&self, value: impl Fn(&TrialResult) -> f64) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(value).sum::<f64>() / self.trials.len() as f64
    }
}

/// One point of a frequency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Clock frequency of this point, in MHz.
    pub freq_mhz: f64,
    /// The Monte-Carlo summary at this frequency.
    pub summary: ExperimentSummary,
}

/// SplitMix64 finalization step (Vigna's `mix` function).
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the injector seed of one Monte-Carlo trial from the campaign
/// seed, the campaign-cell index and the trial index.
///
/// Every `(campaign_seed, cell_index, trial_index)` triple maps to its own
/// SplitMix64 output, so trial 0 is decorrelated from the campaign seed and
/// cells that share a campaign seed (e.g. the points of a frequency sweep)
/// draw independent fault streams.  The old `seed ^ trial * C` scheme had
/// both defects: trial 0 reused the campaign seed verbatim, and every sweep
/// point replayed the identical trial-seed sequence.
pub fn derive_trial_seed(campaign_seed: u64, cell_index: u64, trial_index: u64) -> u64 {
    let cell_stream = splitmix_finalize(
        campaign_seed.wrapping_add(SPLITMIX_GAMMA.wrapping_mul(cell_index.wrapping_add(1))),
    );
    splitmix_finalize(
        cell_stream.wrapping_add(SPLITMIX_GAMMA.wrapping_mul(trial_index.wrapping_add(1))),
    )
}

/// The watchdog cycle limit used for a benchmark whose fault-free runtime
/// is `golden_cycles`: a generous multiple, so that wrong branching either
/// terminates (wrong output) or is flagged as fatal.
pub fn watchdog_cycles(golden_cycles: u64) -> u64 {
    golden_cycles.saturating_mul(8).max(100_000)
}

/// Runs one trial on an already prepared core (architectural state and
/// data memory reset, inputs *not* yet loaded).
fn run_prepared_trial<F: FaultInjector + ?Sized>(
    core: &mut Core,
    benchmark: &dyn Benchmark,
    injector: &mut F,
    max_cycles: u64,
) -> TrialResult {
    benchmark.initialize(core.memory_mut());
    let config = RunConfig {
        max_cycles,
        fi_window: Some(benchmark.fi_window()),
        ..RunConfig::default()
    };
    let outcome = core.run_with_injector(&config, injector);
    // Sharded per-thread counters: one relaxed add each, no measurable
    // cost next to the trial just simulated.
    let obs = sfi_obs::metrics();
    obs.trials.inc();
    obs.iss_cycles.add(core.stats().cycles);
    if matches!(outcome, RunOutcome::Watchdog { .. }) {
        obs.iss_watchdog_trips.inc();
    }
    let finished = outcome.finished();
    let output_error = if finished {
        benchmark.output_error(core.memory())
    } else {
        f64::NAN
    };
    TrialResult {
        finished,
        correct: finished && output_error == 0.0,
        output_error,
        fi_rate_per_kcycle: core.stats().fi_rate_per_kcycle(),
        cycles: core.stats().cycles,
    }
}

fn run_one_trial<F: FaultInjector + ?Sized>(
    benchmark: &dyn Benchmark,
    injector: &mut F,
    max_cycles: u64,
) -> TrialResult {
    let mut core = Core::new(benchmark.program().clone(), benchmark.dmem_words());
    run_prepared_trial(&mut core, benchmark, injector, max_cycles)
}

/// Number of fault-free cycles of a benchmark (used to size the watchdog
/// and reported in Table 1).
pub fn golden_cycles(benchmark: &dyn Benchmark) -> u64 {
    run_one_trial(benchmark, &mut NoFaultInjector, u64::MAX / 4).cycles
}

/// A constructed injector of any fault model, cached between trials.
#[derive(Debug, Clone)]
enum CachedInjector {
    None(NoFaultInjector),
    FixedProbability(FixedProbabilityModel),
    StaPeriodViolation(StaPeriodViolationModel),
    StaWithNoise(StaWithNoiseModel),
    StatisticalDta(StatisticalDtaModel),
}

impl CachedInjector {
    fn build(study: &CaseStudy, model: FaultModel, point: OperatingPoint, seed: u64) -> Self {
        match model {
            FaultModel::None => CachedInjector::None(NoFaultInjector),
            FaultModel::FixedProbability(p) => {
                CachedInjector::FixedProbability(study.model_a(p, seed))
            }
            FaultModel::StaPeriodViolation => {
                CachedInjector::StaPeriodViolation(study.model_b(point))
            }
            FaultModel::StaWithNoise => {
                CachedInjector::StaWithNoise(study.model_b_plus(point, seed))
            }
            FaultModel::StatisticalDta => {
                CachedInjector::StatisticalDta(study.model_c(point, seed))
            }
        }
    }

    /// Rewinds the injector to the state `build` would have produced with
    /// `seed`: models A, B+ and C reseed their RNG, the stateless models
    /// have nothing to rewind.
    fn reseed(&mut self, seed: u64) {
        match self {
            CachedInjector::None(_) | CachedInjector::StaPeriodViolation(_) => {}
            CachedInjector::FixedProbability(m) => m.reseed(seed),
            CachedInjector::StaWithNoise(m) => m.reseed(seed),
            CachedInjector::StatisticalDta(m) => m.reseed(seed),
        }
    }

    fn as_injector_mut(&mut self) -> &mut dyn FaultInjector {
        match self {
            CachedInjector::None(m) => m,
            CachedInjector::FixedProbability(m) => m,
            CachedInjector::StaPeriodViolation(m) => m,
            CachedInjector::StaWithNoise(m) => m,
            CachedInjector::StatisticalDta(m) => m,
        }
    }
}

/// Reusable per-worker scratch state of the Monte-Carlo hot loop.
///
/// A fresh context per trial reproduces the allocation profile of the old
/// stand-alone path (one core, one injector); the point of the type is to
/// live *across* trials: the simulated core (program `Arc` + data memory)
/// is recycled per benchmark via [`Core::reset_full`], and the injector is
/// recycled via `reseed` whenever consecutive trials share a fault model
/// and operating point — the common case inside a campaign cell.  Results
/// are bit-identical to fresh construction: a reset core equals a new
/// core, and a reseeded injector equals a newly built one because all
/// expensive injector state is trial-invariant and `Arc`-shared.
///
/// The context is deliberately *not* `Sync`: every campaign worker thread
/// owns one.
#[derive(Debug, Default)]
pub struct TrialContext {
    /// One recycled core per benchmark, keyed by the caller's benchmark
    /// key (the campaign engine uses the spec's benchmark index).
    cores: Vec<(usize, Core)>,
    /// The last trial's injector, reusable while the study (identified by
    /// its share token — see [`CaseStudy::share_token`]), fault model and
    /// operating point repeat.  Holding the token `Arc` also guarantees
    /// its allocation cannot be recycled into a different study while
    /// this cache entry lives.
    injector: Option<CachedTrialInjector>,
}

#[derive(Debug)]
struct CachedTrialInjector {
    study: Arc<VddDelayCurve>,
    model: FaultModel,
    point: OperatingPoint,
    injector: CachedInjector,
}

impl TrialContext {
    /// An empty context (no cores, no cached injector).
    pub fn new() -> Self {
        TrialContext::default()
    }

    /// Runs one Monte-Carlo trial, recycling this context's core and
    /// injector where possible.
    ///
    /// `benchmark_key` must uniquely identify `benchmark` among all
    /// benchmarks this context is used with (e.g. its index in the
    /// campaign spec); the cached core of a key is only valid for the
    /// benchmark it was built from.  The injector cache keys itself on
    /// the study's identity (in addition to model and operating point),
    /// so alternating between different studies is safe — it merely
    /// forgoes the reuse.
    ///
    /// The result is bit-identical to
    /// [`run_single_trial`] with the same arguments.
    ///
    /// # Panics
    ///
    /// Panics if the requested model needs a characterization voltage the
    /// study does not provide.
    #[allow(clippy::too_many_arguments)]
    pub fn run_trial(
        &mut self,
        study: &CaseStudy,
        benchmark: &dyn Benchmark,
        benchmark_key: usize,
        model: FaultModel,
        point: OperatingPoint,
        max_cycles: u64,
        trial_seed: u64,
    ) -> TrialResult {
        let mut slot = match self.injector.take() {
            Some(mut slot)
                if Arc::ptr_eq(&slot.study, study.share_token())
                    && slot.model == model
                    && slot.point == point =>
            {
                slot.injector.reseed(trial_seed);
                slot
            }
            _ => CachedTrialInjector {
                study: Arc::clone(study.share_token()),
                model,
                point,
                injector: CachedInjector::build(study, model, point, trial_seed),
            },
        };
        let core = match self.cores.iter().position(|(key, _)| *key == benchmark_key) {
            Some(index) => {
                let core = &mut self.cores[index].1;
                core.reset_full();
                core
            }
            None => {
                let core = Core::new(benchmark.program().clone(), benchmark.dmem_words());
                self.cores.push((benchmark_key, core));
                &mut self.cores.last_mut().expect("just pushed").1
            }
        };
        let result =
            run_prepared_trial(core, benchmark, slot.injector.as_injector_mut(), max_cycles);
        let faults = core.stats().injected_faults;
        if faults > 0 {
            sfi_obs::metrics()
                .iss_faults_for(model_metric_index(model))
                .add(faults);
        }
        self.injector = Some(slot);
        result
    }
}

/// The [`sfi_obs::FAULT_MODEL_LABELS`] index of a fault model.
fn model_metric_index(model: FaultModel) -> usize {
    match model {
        FaultModel::None => 0,
        FaultModel::FixedProbability(_) => 1,
        FaultModel::StaPeriodViolation => 2,
        FaultModel::StaWithNoise => 3,
        FaultModel::StatisticalDta => 4,
    }
}

/// Runs exactly one Monte-Carlo trial of `benchmark` under `model` at
/// `point`, with the per-trial injector seed `trial_seed` and the watchdog
/// limit `max_cycles`.
///
/// This is the stand-alone form of the hot-loop primitive: it allocates
/// the ISS state for this one trial, while the expensive characterization
/// data inside `study` is `Arc`-shared, never cloned.  Callers running
/// many trials (the campaign engine, [`run_experiment`]) hold a
/// [`TrialContext`] and call [`TrialContext::run_trial`] instead, which
/// additionally recycles the core and injector across trials;  both paths
/// produce bit-identical results.
///
/// # Panics
///
/// Panics if the requested model needs a characterization voltage the
/// study does not provide.
pub fn run_single_trial(
    study: &CaseStudy,
    benchmark: &dyn Benchmark,
    model: FaultModel,
    point: OperatingPoint,
    max_cycles: u64,
    trial_seed: u64,
) -> TrialResult {
    TrialContext::new().run_trial(study, benchmark, 0, model, point, max_cycles, trial_seed)
}

#[allow(clippy::too_many_arguments)]
fn run_cell_with_golden(
    context: &mut TrialContext,
    study: &CaseStudy,
    benchmark: &dyn Benchmark,
    model: FaultModel,
    point: OperatingPoint,
    trials: usize,
    seed: u64,
    cell_index: u64,
    golden: u64,
) -> ExperimentSummary {
    assert!(trials > 0, "at least one trial is required");
    let max_cycles = watchdog_cycles(golden);
    let results = (0..trials)
        .map(|trial| {
            let trial_seed = derive_trial_seed(seed, cell_index, trial as u64);
            context.run_trial(study, benchmark, 0, model, point, max_cycles, trial_seed)
        })
        .collect();
    ExperimentSummary { trials: results }
}

/// Runs a Monte-Carlo campaign of `trials` independent runs of `benchmark`
/// under the given fault model and operating point.
///
/// Each trial uses a different injector seed derived from `seed` via
/// [`derive_trial_seed`], matching the paper's
/// at-least-100-simulations-per-data-point methodology.  The result is
/// identical to campaign cell 0 of an `sfi-campaign` run with the same
/// seed, trial count and operating point.
///
/// # Panics
///
/// Panics if `trials` is zero, or if the requested model needs a
/// characterization voltage the study does not provide.
pub fn run_experiment(
    study: &CaseStudy,
    benchmark: &dyn Benchmark,
    model: FaultModel,
    point: OperatingPoint,
    trials: usize,
    seed: u64,
) -> ExperimentSummary {
    run_cell_with_golden(
        &mut TrialContext::new(),
        study,
        benchmark,
        model,
        point,
        trials,
        seed,
        0,
        golden_cycles(benchmark),
    )
}

/// Sweeps the clock frequency over `freqs_mhz` (keeping voltage and noise
/// from `base_point`) and returns one [`SweepPoint`] per frequency.
///
/// The benchmark's fault-free golden run is simulated once for the whole
/// sweep (it only sizes the watchdog and does not depend on the swept
/// frequency), and every sweep point draws its trial seeds from its own
/// [`derive_trial_seed`] cell stream, so points do not replay each other's
/// fault sequences.
pub fn frequency_sweep(
    study: &CaseStudy,
    benchmark: &dyn Benchmark,
    model: FaultModel,
    base_point: OperatingPoint,
    freqs_mhz: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    let golden = golden_cycles(benchmark);
    let sweep_span = sfi_obs::Span::begin("frequency_sweep", "core")
        .arg("points", freqs_mhz.len() as u64)
        .arg("trials_per_point", trials as u64);
    // One scratch context for the whole sweep: the core is recycled across
    // all points, the injector across the trials of each point.
    let mut context = TrialContext::new();
    let points = freqs_mhz
        .iter()
        .enumerate()
        .map(|(cell_index, &f)| {
            // One span per swept cell; trials inside it are untraced so
            // the per-trial hot path stays uninstrumented here.
            let _cell_span = sweep_span
                .child("sweep_cell", "core")
                .arg("cell", cell_index as u64);
            SweepPoint {
                freq_mhz: f,
                summary: run_cell_with_golden(
                    &mut context,
                    study,
                    benchmark,
                    model,
                    base_point.at_frequency(f),
                    trials,
                    seed,
                    cell_index as u64,
                    golden,
                ),
            }
        })
        .collect();
    sweep_span.finish();
    sfi_obs::span::flush_thread();
    points
}

/// The point of first failure: the lowest swept frequency at which the
/// application no longer finishes with a 100 % correct result.
pub fn point_of_first_failure(points: &[SweepPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.summary.correct_fraction() < 1.0)
        .map(|p| p.freq_mhz)
        .fold(None, |acc: Option<f64>, f| {
            Some(acc.map_or(f, |a| a.min(f)))
        })
}

/// Relative frequency-over-scaling gain of a PoFF over the STA limit
/// (positive values mean the application survives beyond the limit).
pub fn overscaling_gain(poff_mhz: f64, sta_limit_mhz: f64) -> f64 {
    poff_mhz / sta_limit_mhz - 1.0
}

/// Evenly spaced frequency grid helper for sweeps.
///
/// # Panics
///
/// Panics if `points < 2` or `start >= end`.
pub fn frequency_grid(start_mhz: f64, end_mhz: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "a grid needs at least two points");
    assert!(start_mhz < end_mhz, "start must be below end");
    let step = (end_mhz - start_mhz) / (points - 1) as f64;
    (0..points).map(|i| start_mhz + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::CaseStudyConfig;
    use sfi_kernels::median::MedianBenchmark;

    fn fast_study() -> CaseStudy {
        CaseStudy::build(CaseStudyConfig::fast_for_tests())
    }

    #[test]
    fn golden_runs_are_always_correct() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let point = OperatingPoint::new(2000.0, 0.7);
        let summary = run_experiment(&study, &bench, FaultModel::None, point, 3, 5);
        assert_eq!(summary.finished_fraction(), 1.0);
        assert_eq!(summary.correct_fraction(), 1.0);
        assert_eq!(summary.mean_fi_rate(), 0.0);
        assert_eq!(summary.mean_output_error(), 0.0);
        assert!(summary.mean_cycles() > 0.0);
    }

    #[test]
    fn below_sta_limit_model_c_is_error_free() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 0.95, 0.7);
        let summary = run_experiment(&study, &bench, FaultModel::StatisticalDta, point, 3, 5);
        assert_eq!(summary.correct_fraction(), 1.0);
        assert_eq!(summary.mean_fi_rate(), 0.0);
    }

    #[test]
    fn far_above_the_limit_everything_breaks() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 2.5, 0.7);
        let summary = run_experiment(&study, &bench, FaultModel::StatisticalDta, point, 3, 5);
        assert!(summary.correct_fraction() < 1.0);
        assert!(summary.mean_fi_rate() > 0.0);
    }

    #[test]
    fn model_a_injects_at_any_frequency() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        // Even far below the STA limit model A injects faults — the
        // disconnect from operating conditions the paper criticises.
        let point = OperatingPoint::new(100.0, 0.7);
        let summary = run_experiment(
            &study,
            &bench,
            FaultModel::FixedProbability(0.002),
            point,
            3,
            5,
        );
        assert!(summary.mean_fi_rate() > 0.0);
    }

    #[test]
    fn model_b_hard_threshold_at_sta_limit() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let sta = study.sta_limit_mhz(0.7);
        let below = run_experiment(
            &study,
            &bench,
            FaultModel::StaPeriodViolation,
            OperatingPoint::new(sta * 0.99, 0.7),
            2,
            5,
        );
        let above = run_experiment(
            &study,
            &bench,
            FaultModel::StaPeriodViolation,
            OperatingPoint::new(sta * 1.02, 0.7),
            2,
            5,
        );
        assert_eq!(below.correct_fraction(), 1.0);
        assert!(
            above.correct_fraction() < 1.0,
            "model B fails immediately above the STA limit"
        );
        assert!(
            above.mean_fi_rate() > 100.0,
            "model B injects on almost every ALU cycle"
        );
    }

    #[test]
    fn sweep_and_poff_detection() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let sta = study.sta_limit_mhz(0.7);
        let freqs = frequency_grid(sta * 0.9, sta * 2.2, 5);
        let points = frequency_sweep(
            &study,
            &bench,
            FaultModel::StatisticalDta,
            OperatingPoint::new(sta, 0.7),
            &freqs,
            2,
            9,
        );
        assert_eq!(points.len(), 5);
        let poff = point_of_first_failure(&points).expect("the sweep must reach failure");
        assert!(poff > sta * 0.9 && poff <= sta * 2.2);
        assert!(overscaling_gain(poff, sta) > -0.2);
        // The first (lowest) point is still fully correct.
        assert_eq!(points[0].summary.correct_fraction(), 1.0);
    }

    #[test]
    fn golden_cycles_reported() {
        let bench = MedianBenchmark::new(21, 3);
        assert!(golden_cycles(&bench) > 1000);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        run_experiment(
            &study,
            &bench,
            FaultModel::None,
            OperatingPoint::new(700.0, 0.7),
            0,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn invalid_grid_panics() {
        frequency_grid(100.0, 200.0, 1);
    }

    #[test]
    fn trial_seeds_are_decorrelated() {
        // Trial 0 must not reuse the campaign seed verbatim.
        assert_ne!(derive_trial_seed(5, 0, 0), 5);
        // Cells sharing a campaign seed draw distinct streams.
        assert_ne!(derive_trial_seed(5, 0, 0), derive_trial_seed(5, 1, 0));
        // Trials within a cell are distinct.
        assert_ne!(derive_trial_seed(5, 0, 0), derive_trial_seed(5, 0, 1));
        // The derivation is a pure function.
        assert_eq!(derive_trial_seed(5, 3, 7), derive_trial_seed(5, 3, 7));
        // No trivial collisions across a small grid.
        let mut seen = std::collections::HashSet::new();
        for cell in 0..16u64 {
            for trial in 0..64u64 {
                assert!(seen.insert(derive_trial_seed(99, cell, trial)));
            }
        }
    }

    #[test]
    fn checked_mean_output_error_handles_empty_and_unfinished() {
        let empty = ExperimentSummary { trials: vec![] };
        assert_eq!(empty.checked_mean_output_error(), None);
        assert!(empty.mean_output_error().is_nan());
        let crashed = ExperimentSummary {
            trials: vec![TrialResult {
                finished: false,
                correct: false,
                output_error: f64::NAN,
                fi_rate_per_kcycle: 3.0,
                cycles: 17,
            }],
        };
        assert_eq!(crashed.checked_mean_output_error(), None);
        assert!(crashed.mean_output_error().is_nan());
        // A *finished* trial with an unreadable output (NaN) is excluded
        // from the mean rather than poisoning it.
        let unreadable = |err: f64| TrialResult {
            finished: true,
            correct: false,
            output_error: err,
            fi_rate_per_kcycle: 1.0,
            cycles: 10,
        };
        let mixed = ExperimentSummary {
            trials: vec![unreadable(f64::NAN), unreadable(0.5)],
        };
        assert_eq!(mixed.checked_mean_output_error(), Some(0.5));
        let all_unreadable = ExperimentSummary {
            trials: vec![unreadable(f64::NAN)],
        };
        assert_eq!(all_unreadable.checked_mean_output_error(), None);
    }

    #[test]
    fn trial_context_reuse_is_bit_identical_to_fresh_construction() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let point =
            OperatingPoint::new(study.sta_limit_mhz(0.7) * 1.2, 0.7).with_noise_sigma_mv(10.0);
        let max_cycles = watchdog_cycles(golden_cycles(&bench));
        let mut context = TrialContext::new();
        for trial in 0..6u64 {
            let seed = derive_trial_seed(9, 0, trial);
            let reused = context.run_trial(
                &study,
                &bench,
                0,
                FaultModel::StatisticalDta,
                point,
                max_cycles,
                seed,
            );
            let fresh = run_single_trial(
                &study,
                &bench,
                FaultModel::StatisticalDta,
                point,
                max_cycles,
                seed,
            );
            assert_eq!(reused.finished, fresh.finished, "trial {trial}");
            assert_eq!(reused.cycles, fresh.cycles, "trial {trial}");
            assert_eq!(
                reused.output_error.to_bits(),
                fresh.output_error.to_bits(),
                "trial {trial}"
            );
            assert_eq!(
                reused.fi_rate_per_kcycle.to_bits(),
                fresh.fi_rate_per_kcycle.to_bits(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn trial_context_does_not_leak_injectors_across_studies() {
        // Two independently built studies with different characterization
        // depth produce different CDFs; a context alternating between them
        // must rebuild the injector instead of replaying the first study's
        // timing data against the second.
        let study_a = fast_study();
        let study_b = CaseStudy::build(CaseStudyConfig {
            cycles_per_op: 24,
            ..CaseStudyConfig::fast_for_tests()
        });
        let bench = MedianBenchmark::new(21, 3);
        let point =
            OperatingPoint::new(study_a.sta_limit_mhz(0.7) * 1.15, 0.7).with_noise_sigma_mv(10.0);
        let max_cycles = watchdog_cycles(golden_cycles(&bench));
        let mut context = TrialContext::new();
        for (trial, study) in [&study_a, &study_b, &study_a, &study_b].iter().enumerate() {
            let seed = derive_trial_seed(11, 0, trial as u64);
            let shared = context.run_trial(
                study,
                &bench,
                0,
                FaultModel::StatisticalDta,
                point,
                max_cycles,
                seed,
            );
            let fresh = run_single_trial(
                study,
                &bench,
                FaultModel::StatisticalDta,
                point,
                max_cycles,
                seed,
            );
            assert_eq!(shared.cycles, fresh.cycles, "trial {trial}");
            assert_eq!(
                shared.fi_rate_per_kcycle.to_bits(),
                fresh.fi_rate_per_kcycle.to_bits(),
                "trial {trial}"
            );
        }
        // Clones of one study share the token, so reuse stays possible.
        assert!(Arc::ptr_eq(
            study_a.share_token(),
            study_a.clone().share_token()
        ));
        assert!(!Arc::ptr_eq(study_a.share_token(), study_b.share_token()));
    }

    #[test]
    fn watchdog_has_a_floor_and_saturates() {
        assert_eq!(watchdog_cycles(0), 100_000);
        assert_eq!(watchdog_cycles(1_000_000), 8_000_000);
        assert_eq!(watchdog_cycles(u64::MAX), u64::MAX);
    }
}
