//! Monte-Carlo experiments, frequency sweeps and point-of-first-failure
//! detection.

use crate::study::CaseStudy;
use sfi_cpu::{Core, FaultInjector, NoFaultInjector, RunConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::Benchmark;

/// Which fault-injection model an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// No fault injection (golden runs).
    None,
    /// Model A: fixed per-bit flip probability.
    FixedProbability(f64),
    /// Model B: deterministic STA period violation.
    StaPeriodViolation,
    /// Model B+: STA period violation modulated by supply noise.
    StaWithNoise,
    /// Model C: statistical, instruction-aware DTA CDFs.
    StatisticalDta,
}

/// Result of a single Monte-Carlo trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Whether the program ran to completion.
    pub finished: bool,
    /// Whether the output was exactly correct (implies `finished`).
    pub correct: bool,
    /// Kernel-specific output error (only meaningful if `finished`).
    pub output_error: f64,
    /// Injected faults per 1000 kernel cycles.
    pub fi_rate_per_kcycle: f64,
    /// Simulated cycles.
    pub cycles: u64,
}

/// Aggregated result of a Monte-Carlo campaign at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSummary {
    /// The individual trials.
    pub trials: Vec<TrialResult>,
}

impl ExperimentSummary {
    /// Fraction of trials that ran to completion.
    pub fn finished_fraction(&self) -> f64 {
        self.fraction(|t| t.finished)
    }

    /// Fraction of trials with an exactly correct output.
    pub fn correct_fraction(&self) -> f64 {
        self.fraction(|t| t.correct)
    }

    /// Mean fault-injection rate (faults per kCycle) over all trials.
    pub fn mean_fi_rate(&self) -> f64 {
        self.mean(|t| t.fi_rate_per_kcycle)
    }

    /// Mean output error over the trials that finished (the paper reports
    /// the output error of the remaining successful runs).
    pub fn mean_output_error(&self) -> f64 {
        let finished: Vec<&TrialResult> = self.trials.iter().filter(|t| t.finished).collect();
        if finished.is_empty() {
            return f64::NAN;
        }
        finished.iter().map(|t| t.output_error).sum::<f64>() / finished.len() as f64
    }

    /// Mean cycle count over all trials.
    pub fn mean_cycles(&self) -> f64 {
        self.mean(|t| t.cycles as f64)
    }

    fn fraction(&self, predicate: impl Fn(&TrialResult) -> bool) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| predicate(t)).count() as f64 / self.trials.len() as f64
    }

    fn mean(&self, value: impl Fn(&TrialResult) -> f64) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(value).sum::<f64>() / self.trials.len() as f64
    }
}

/// One point of a frequency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Clock frequency of this point, in MHz.
    pub freq_mhz: f64,
    /// The Monte-Carlo summary at this frequency.
    pub summary: ExperimentSummary,
}

fn run_one_trial<F: FaultInjector + ?Sized>(
    benchmark: &dyn Benchmark,
    injector: &mut F,
    max_cycles: u64,
) -> TrialResult {
    let mut core = Core::new(benchmark.program().clone(), benchmark.dmem_words());
    benchmark.initialize(core.memory_mut());
    let config = RunConfig {
        max_cycles,
        fi_window: Some(benchmark.fi_window()),
        ..RunConfig::default()
    };
    let outcome = core.run_with_injector(&config, injector);
    let finished = outcome.finished();
    let output_error = if finished { benchmark.output_error(core.memory()) } else { f64::NAN };
    TrialResult {
        finished,
        correct: finished && output_error == 0.0,
        output_error,
        fi_rate_per_kcycle: core.stats().fi_rate_per_kcycle(),
        cycles: core.stats().cycles,
    }
}

/// Number of fault-free cycles of a benchmark (used to size the watchdog
/// and reported in Table 1).
pub fn golden_cycles(benchmark: &dyn Benchmark) -> u64 {
    run_one_trial(benchmark, &mut NoFaultInjector, u64::MAX / 4).cycles
}

/// Runs a Monte-Carlo campaign of `trials` independent runs of `benchmark`
/// under the given fault model and operating point.
///
/// Each trial uses a different injector seed derived from `seed`, matching
/// the paper's at-least-100-simulations-per-data-point methodology.
///
/// # Panics
///
/// Panics if `trials` is zero, or if the requested model needs a
/// characterization voltage the study does not provide.
pub fn run_experiment(
    study: &CaseStudy,
    benchmark: &dyn Benchmark,
    model: FaultModel,
    point: OperatingPoint,
    trials: usize,
    seed: u64,
) -> ExperimentSummary {
    assert!(trials > 0, "at least one trial is required");
    // Watchdog: generous multiple of the fault-free runtime, so that wrong
    // branching either terminates (wrong output) or is flagged as fatal.
    let max_cycles = golden_cycles(benchmark).saturating_mul(8).max(100_000);

    let results = (0..trials)
        .map(|trial| {
            let trial_seed = seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            match model {
                FaultModel::None => run_one_trial(benchmark, &mut NoFaultInjector, max_cycles),
                FaultModel::FixedProbability(p) => {
                    let mut injector = study.model_a(p, trial_seed);
                    run_one_trial(benchmark, &mut injector, max_cycles)
                }
                FaultModel::StaPeriodViolation => {
                    let mut injector = study.model_b(point);
                    run_one_trial(benchmark, &mut injector, max_cycles)
                }
                FaultModel::StaWithNoise => {
                    let mut injector = study.model_b_plus(point, trial_seed);
                    run_one_trial(benchmark, &mut injector, max_cycles)
                }
                FaultModel::StatisticalDta => {
                    let mut injector = study.model_c(point, trial_seed);
                    run_one_trial(benchmark, &mut injector, max_cycles)
                }
            }
        })
        .collect();
    ExperimentSummary { trials: results }
}

/// Sweeps the clock frequency over `freqs_mhz` (keeping voltage and noise
/// from `base_point`) and returns one [`SweepPoint`] per frequency.
pub fn frequency_sweep(
    study: &CaseStudy,
    benchmark: &dyn Benchmark,
    model: FaultModel,
    base_point: OperatingPoint,
    freqs_mhz: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    freqs_mhz
        .iter()
        .map(|&f| SweepPoint {
            freq_mhz: f,
            summary: run_experiment(study, benchmark, model, base_point.at_frequency(f), trials, seed),
        })
        .collect()
}

/// The point of first failure: the lowest swept frequency at which the
/// application no longer finishes with a 100 % correct result.
pub fn point_of_first_failure(points: &[SweepPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.summary.correct_fraction() < 1.0)
        .map(|p| p.freq_mhz)
        .fold(None, |acc: Option<f64>, f| Some(acc.map_or(f, |a| a.min(f))))
}

/// Relative frequency-over-scaling gain of a PoFF over the STA limit
/// (positive values mean the application survives beyond the limit).
pub fn overscaling_gain(poff_mhz: f64, sta_limit_mhz: f64) -> f64 {
    poff_mhz / sta_limit_mhz - 1.0
}

/// Evenly spaced frequency grid helper for sweeps.
///
/// # Panics
///
/// Panics if `points < 2` or `start >= end`.
pub fn frequency_grid(start_mhz: f64, end_mhz: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "a grid needs at least two points");
    assert!(start_mhz < end_mhz, "start must be below end");
    let step = (end_mhz - start_mhz) / (points - 1) as f64;
    (0..points).map(|i| start_mhz + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::CaseStudyConfig;
    use sfi_kernels::median::MedianBenchmark;

    fn fast_study() -> CaseStudy {
        CaseStudy::build(CaseStudyConfig::fast_for_tests())
    }

    #[test]
    fn golden_runs_are_always_correct() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let point = OperatingPoint::new(2000.0, 0.7);
        let summary = run_experiment(&study, &bench, FaultModel::None, point, 3, 5);
        assert_eq!(summary.finished_fraction(), 1.0);
        assert_eq!(summary.correct_fraction(), 1.0);
        assert_eq!(summary.mean_fi_rate(), 0.0);
        assert_eq!(summary.mean_output_error(), 0.0);
        assert!(summary.mean_cycles() > 0.0);
    }

    #[test]
    fn below_sta_limit_model_c_is_error_free() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 0.95, 0.7);
        let summary = run_experiment(&study, &bench, FaultModel::StatisticalDta, point, 3, 5);
        assert_eq!(summary.correct_fraction(), 1.0);
        assert_eq!(summary.mean_fi_rate(), 0.0);
    }

    #[test]
    fn far_above_the_limit_everything_breaks() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 2.5, 0.7);
        let summary = run_experiment(&study, &bench, FaultModel::StatisticalDta, point, 3, 5);
        assert!(summary.correct_fraction() < 1.0);
        assert!(summary.mean_fi_rate() > 0.0);
    }

    #[test]
    fn model_a_injects_at_any_frequency() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        // Even far below the STA limit model A injects faults — the
        // disconnect from operating conditions the paper criticises.
        let point = OperatingPoint::new(100.0, 0.7);
        let summary =
            run_experiment(&study, &bench, FaultModel::FixedProbability(0.002), point, 3, 5);
        assert!(summary.mean_fi_rate() > 0.0);
    }

    #[test]
    fn model_b_hard_threshold_at_sta_limit() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let sta = study.sta_limit_mhz(0.7);
        let below = run_experiment(
            &study,
            &bench,
            FaultModel::StaPeriodViolation,
            OperatingPoint::new(sta * 0.99, 0.7),
            2,
            5,
        );
        let above = run_experiment(
            &study,
            &bench,
            FaultModel::StaPeriodViolation,
            OperatingPoint::new(sta * 1.02, 0.7),
            2,
            5,
        );
        assert_eq!(below.correct_fraction(), 1.0);
        assert!(above.correct_fraction() < 1.0, "model B fails immediately above the STA limit");
        assert!(above.mean_fi_rate() > 100.0, "model B injects on almost every ALU cycle");
    }

    #[test]
    fn sweep_and_poff_detection() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        let sta = study.sta_limit_mhz(0.7);
        let freqs = frequency_grid(sta * 0.9, sta * 2.2, 5);
        let points = frequency_sweep(
            &study,
            &bench,
            FaultModel::StatisticalDta,
            OperatingPoint::new(sta, 0.7),
            &freqs,
            2,
            9,
        );
        assert_eq!(points.len(), 5);
        let poff = point_of_first_failure(&points).expect("the sweep must reach failure");
        assert!(poff > sta * 0.9 && poff <= sta * 2.2);
        assert!(overscaling_gain(poff, sta) > -0.2);
        // The first (lowest) point is still fully correct.
        assert_eq!(points[0].summary.correct_fraction(), 1.0);
    }

    #[test]
    fn golden_cycles_reported() {
        let bench = MedianBenchmark::new(21, 3);
        assert!(golden_cycles(&bench) > 1000);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let study = fast_study();
        let bench = MedianBenchmark::new(21, 3);
        run_experiment(&study, &bench, FaultModel::None, OperatingPoint::new(700.0, 0.7), 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn invalid_grid_panics() {
        frequency_grid(100.0, 200.0, 1);
    }
}
