//! Persistent characterization cache.
//!
//! [`crate::study::CaseStudy::build`] re-runs the gate-level DTA
//! characterization kernel — by far the most expensive step of the flow —
//! on every process start.  This module persists the extracted per-voltage
//! CDF sets to disk as JSON, keyed by a structural fingerprint of the
//! [`CaseStudyConfig`], so a restarted process (in particular the
//! `sfi-serve` daemon) starts warm:
//!
//! * [`store`] writes atomically (temp file + rename, the same discipline
//!   as campaign checkpoints), so a crash mid-write leaves the previous
//!   cache intact.
//! * [`load`] is strict: a missing file, malformed JSON, a version or
//!   fingerprint mismatch, or an inconsistent shape all yield `None` and
//!   the caller re-characterizes from scratch instead of trusting stale
//!   or hand-edited data.
//!
//! Floating-point values round-trip exactly (the JSON writer uses
//! shortest-round-trip formatting), so a cache-restored
//! [`TimingCharacterization`] is bit-identical to a freshly computed one
//! and downstream Monte-Carlo results do not depend on whether the cache
//! was warm.

use crate::json::Json;
use crate::study::CaseStudyConfig;
use sfi_netlist::alu::AluOp;
use sfi_timing::{ErrorCdf, TimingCharacterization};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Current cache format version.
pub const FORMAT_VERSION: u64 = 1;

impl CaseStudyConfig {
    /// A structural fingerprint of the configuration (FNV-1a over every
    /// field).  The characterization cache stores it and refuses to load a
    /// cache written for a different configuration.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.alu_width as u64);
        h.u64(self.target_fmax_mhz.to_bits());
        h.u64(self.nominal_vdd.to_bits());
        h.u64(self.voltages.len() as u64);
        for &v in &self.voltages {
            h.u64(v.to_bits());
        }
        h.u64(self.cycles_per_op as u64);
        h.u64(self.budgets.add_sub.to_bits());
        h.u64(self.budgets.shifter.to_bits());
        h.u64(self.budgets.logic.to_bits());
        h.u64(self.budgets.comparator.to_bits());
        h.u64(self.seed);
        h.finish()
    }
}

/// The cache file for `fingerprint` inside `dir`.
pub fn cache_file(dir: &Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("charcache-{fingerprint:016x}.json"))
}

fn characterization_to_json(ch: &TimingCharacterization) -> Json {
    let cdfs: Vec<Json> = AluOp::ALL
        .iter()
        .map(|&op| {
            Json::Arr(
                (0..ch.endpoint_count())
                    .map(|e| {
                        Json::Arr(
                            ch.cdf(op, e)
                                .samples()
                                .iter()
                                .map(|&d| Json::Num(d))
                                .collect(),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let sta: Vec<Json> = (0..ch.endpoint_count())
        .map(|e| Json::Num(ch.sta_endpoint_delay_ps(e)))
        .collect();
    Json::obj([
        ("vdd", Json::Num(ch.vdd())),
        ("width", Json::Num(ch.endpoint_count() as f64)),
        ("cycles_per_op", Json::Num(ch.cycles_per_op() as f64)),
        ("sta_endpoint_delays_ps", Json::Arr(sta)),
        ("cdfs", Json::Arr(cdfs)),
    ])
}

fn finite_f64_array(value: &Json) -> Option<Vec<f64>> {
    value
        .as_arr()?
        .iter()
        .map(|v| v.as_f64().filter(|d| d.is_finite()))
        .collect()
}

fn characterization_from_json(value: &Json) -> Option<TimingCharacterization> {
    let vdd = value.get("vdd")?.as_f64().filter(|v| v.is_finite())?;
    let width = value.get("width")?.as_u64()? as usize;
    let cycles_per_op = value.get("cycles_per_op")?.as_u64()? as usize;
    let sta = finite_f64_array(value.get("sta_endpoint_delays_ps")?)?;
    if sta.len() != width {
        return None;
    }
    let rows = value.get("cdfs")?.as_arr()?;
    if rows.len() != AluOp::ALL.len() {
        return None;
    }
    let mut cdfs: Vec<Vec<ErrorCdf>> = Vec::with_capacity(rows.len());
    for row in rows {
        let endpoints = row.as_arr()?;
        if endpoints.len() != width {
            return None;
        }
        let row: Option<Vec<ErrorCdf>> = endpoints
            .iter()
            .map(|samples| finite_f64_array(samples).map(ErrorCdf::from_samples))
            .collect();
        cdfs.push(row?);
    }
    Some(TimingCharacterization::from_parts(
        vdd,
        width,
        cycles_per_op,
        cdfs,
        sta,
    ))
}

/// Serializes the per-voltage characterizations of `config` to the cache
/// document.
pub fn document(config: &CaseStudyConfig, chars: &[(f64, TimingCharacterization)]) -> Json {
    Json::obj([
        ("version", Json::Num(FORMAT_VERSION as f64)),
        ("fingerprint", Json::Str(config.fingerprint().to_string())),
        (
            "characterizations",
            Json::Arr(
                chars
                    .iter()
                    .map(|(_, ch)| characterization_to_json(ch))
                    .collect(),
            ),
        ),
    ])
}

/// Atomically writes the characterization cache for `config` into `dir`
/// (which is created if missing).
pub fn store(
    dir: &Path,
    config: &CaseStudyConfig,
    chars: &[(f64, TimingCharacterization)],
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = cache_file(dir, config.fingerprint());
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, document(config, chars).to_string())?;
    fs::rename(&tmp, &path)
}

/// Loads the cached characterizations for `config` from `dir`.
///
/// Returns `None` — and the caller re-characterizes — on any mismatch:
/// missing file, parse error, wrong version or fingerprint, or shapes
/// inconsistent with the configuration.
pub fn load(dir: &Path, config: &CaseStudyConfig) -> Option<Vec<(f64, TimingCharacterization)>> {
    let text = fs::read_to_string(cache_file(dir, config.fingerprint())).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("version").and_then(Json::as_u64) != Some(FORMAT_VERSION) {
        return None;
    }
    if doc.get("fingerprint").and_then(Json::as_u64) != Some(config.fingerprint()) {
        return None;
    }
    let entries = doc.get("characterizations")?.as_arr()?;
    if entries.len() != config.voltages.len() {
        return None;
    }
    let mut chars = Vec::with_capacity(entries.len());
    for (entry, &vdd) in entries.iter().zip(&config.voltages) {
        let ch = characterization_from_json(entry)?;
        // The entry order must match the configured voltages exactly.
        if (ch.vdd() - vdd).abs() > 1e-12
            || ch.endpoint_count() != config.alu_width
            || ch.cycles_per_op() != config.cycles_per_op
        {
            return None;
        }
        chars.push((vdd, ch));
    }
    Some(chars)
}

/// FNV-1a, 64 bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::CaseStudy;

    fn temp_cache_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfi_charcache_{name}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn characterizations_identical(a: &TimingCharacterization, b: &TimingCharacterization) -> bool {
        a.vdd() == b.vdd()
            && a.endpoint_count() == b.endpoint_count()
            && a.cycles_per_op() == b.cycles_per_op()
            && (0..a.endpoint_count())
                .all(|e| a.sta_endpoint_delay_ps(e) == b.sta_endpoint_delay_ps(e))
            && AluOp::ALL.iter().all(|&op| {
                (0..a.endpoint_count()).all(|e| a.cdf(op, e).samples() == b.cdf(op, e).samples())
            })
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = CaseStudyConfig::fast_for_tests();
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(base.fingerprint());
        let variants = [
            CaseStudyConfig {
                alu_width: base.alu_width + 1,
                ..base.clone()
            },
            CaseStudyConfig {
                cycles_per_op: base.cycles_per_op + 1,
                ..base.clone()
            },
            CaseStudyConfig {
                seed: base.seed ^ 1,
                ..base.clone()
            },
            CaseStudyConfig {
                voltages: vec![0.7, 0.8],
                ..base.clone()
            },
            CaseStudyConfig {
                target_fmax_mhz: base.target_fmax_mhz + 1.0,
                ..base.clone()
            },
        ];
        for v in variants {
            assert!(
                seen.insert(v.fingerprint()),
                "fingerprint collision for {v:?}"
            );
        }
        // Same config, same fingerprint.
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
    }

    #[test]
    fn cache_round_trip_is_bit_identical() {
        let config = CaseStudyConfig::fast_for_tests();
        let study = CaseStudy::build(config.clone());
        let chars: Vec<(f64, TimingCharacterization)> = config
            .voltages
            .iter()
            .map(|&v| (v, study.characterization(v).clone()))
            .collect();

        let dir = temp_cache_dir("roundtrip");
        store(&dir, &config, &chars).expect("cache writes");
        let restored = load(&dir, &config).expect("cache loads");
        assert_eq!(restored.len(), chars.len());
        for ((_, a), (_, b)) in chars.iter().zip(&restored) {
            assert!(characterizations_identical(a, b));
        }

        // A different configuration must not load this cache.
        let other = CaseStudyConfig {
            seed: config.seed ^ 1,
            ..config.clone()
        };
        assert!(load(&dir, &other).is_none());

        // Corruption is detected, not trusted.
        fs::write(cache_file(&dir, config.fingerprint()), "{not json").expect("overwrite");
        assert!(load(&dir, &config).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_cached_is_warm_on_the_second_start() {
        let config = CaseStudyConfig::fast_for_tests();
        let dir = temp_cache_dir("build");

        let cold = CaseStudy::build_cached(config.clone(), &dir);
        assert!(!cold.characterization_cache_hit(), "first build is cold");
        assert!(
            cache_file(&dir, config.fingerprint()).exists(),
            "the cold build must leave a cache behind"
        );

        let warm = CaseStudy::build_cached(config.clone(), &dir);
        assert!(warm.characterization_cache_hit(), "second build is warm");
        for &v in &config.voltages {
            assert!(characterizations_identical(
                cold.characterization(v),
                warm.characterization(v)
            ));
        }
        assert_eq!(cold.sta_limit_mhz(0.7), warm.sta_limit_mhz(0.7));

        // The uncached entry point never reports a hit.
        assert!(!CaseStudy::build(config).characterization_cache_hit());
        let _ = fs::remove_dir_all(&dir);
    }
}
