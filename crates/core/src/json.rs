//! A minimal JSON value, writer and parser.
//!
//! The build environment has no crates.io access, so campaign checkpoints,
//! the characterization cache and the serve-mode wire protocol use this
//! self-contained implementation instead of serde.  It supports the full
//! JSON value model with two deliberate choices: all numbers are `f64`
//! (64-bit integers that must survive a round trip — seeds, fingerprints —
//! are stored as strings by the consuming layers), and non-finite floats
//! serialize as `null`.
//!
//! The parser is strict in the ways a network-facing format needs to be:
//! trailing garbage after the top-level value is rejected, and nesting
//! depth is capped at [`MAX_PARSE_DEPTH`] so a hostile frame of ten
//! thousand `[` bytes cannot blow the stack.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted (BTreeMap) so output is canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value of object member `key`, if this is an object containing
    /// it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number (numbers only; `null` maps to NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// This value as a u64, accepting both numbers (if integral and exact)
    /// and decimal strings (the canonical encoding for 64-bit values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's float formatting is shortest-round-trip.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// The whole input must be one JSON value (plus surrounding
    /// whitespace): trailing characters are an error, and documents nested
    /// deeper than [`MAX_PARSE_DEPTH`] are rejected.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Serializes to a compact JSON string (via `ToString`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting depth [`Json::parse`] accepts.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for the ASCII
                            // identifiers this module stores; reject them
                            // rather than mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_PARSE_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("name", Json::Str("fig5 (a)".into())),
            ("seed", Json::Str(u64::MAX.to_string())),
            ("ok", Json::Bool(true)),
            ("pi", Json::Num(3.140625)),
            (
                "trials",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(1.0), Json::Num(0.0)]),
                    Json::Null,
                ]),
            ),
        ]);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("round trip parses");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(parsed.get("pi").and_then(Json::as_f64), Some(3.140625));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let text = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]).to_string();
        assert_eq!(text, "[null,null]");
        let parsed = Json::parse(&text).expect("parses");
        assert!(parsed.as_arr().unwrap()[0].as_f64().unwrap().is_nan());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed =
            Json::parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e3 , \"\\u0041\" ] } ").expect("parses");
        let arr = parsed
            .get("a\n\"b")
            .and_then(Json::as_arr)
            .expect("member exists");
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn float_precision_survives_the_round_trip() {
        for &x in &[0.1, 1.0 / 3.0, 707.128_906_25, f64::MIN_POSITIVE, 1e300] {
            let text = Json::Num(x).to_string();
            let Json::Num(back) = Json::parse(&text).expect("parses") else {
                panic!("not a number")
            };
            assert_eq!(back, x, "{x} did not survive");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        for bad in ["{} {}", "1,", "[1] x", "null\nnull", "\"a\"\"b\""] {
            let err = Json::parse(bad).expect_err("trailing input must fail");
            assert!(err.message.contains("trailing"), "{bad:?} gave {err}");
        }
        // A trailing newline is plain whitespace, not garbage (the wire
        // protocol is newline-delimited).
        assert!(Json::parse("{\"a\":1}\n").is_ok());
    }

    #[test]
    fn caps_nesting_depth() {
        let deep_ok = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        let parsed = Json::parse(&deep_ok).expect("depth at the limit parses");
        // Parsing twice from the same document must not accumulate depth.
        assert_eq!(Json::parse(&deep_ok), Ok(parsed));

        for bomb in [
            "[".repeat(MAX_PARSE_DEPTH + 1),
            format!(
                "{}1{}",
                "[".repeat(MAX_PARSE_DEPTH + 1),
                "]".repeat(MAX_PARSE_DEPTH + 1)
            ),
            "{\"a\":".repeat(MAX_PARSE_DEPTH + 1),
        ] {
            let err = Json::parse(&bomb).expect_err("too-deep input must fail");
            assert!(err.message.contains("nesting"), "got {err}");
        }

        // Siblings do not count toward the depth: width is fine.
        let wide = format!("[{}]", vec!["[1]"; 10_000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }
}
