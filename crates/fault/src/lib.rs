//! Timing-error fault-injection models.
//!
//! The paper compares four ways of deciding, every cycle, which bits of the
//! execution-stage result register to flip (Table 2):
//!
//! | model | type | timing data | Vdd noise | gate-level aware | instruction aware |
//! |-------|------|-------------|-----------|------------------|-------------------|
//! | **A** ([`FixedProbabilityModel`]) | fixed probability | none | no | no | no |
//! | **B** ([`StaPeriodViolationModel`]) | fixed period violation | STA | no | partially | no |
//! | **B+** ([`StaWithNoiseModel`]) | modulated period violation | STA | yes | partially | no |
//! | **C** ([`StatisticalDtaModel`]) | probabilistic period violation (CDFs) | DTA | yes | yes | yes |
//!
//! All models implement [`sfi_cpu::FaultInjector`], so they plug directly
//! into the cycle-accurate ISS.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sfi_fault::{FixedProbabilityModel, OperatingPoint};
//! use sfi_cpu::{ExStageContext, FaultInjector};
//! use sfi_isa::AluClass;
//!
//! let mut model = FixedProbabilityModel::new(0.5, 32, 42);
//! let ctx = ExStageContext {
//!     cycle: 0,
//!     alu_class: AluClass::Add,
//!     operand_a: 1,
//!     operand_b: 2,
//!     result: 3,
//!     fi_enabled: true,
//! };
//! // With 32 endpoint bits at 50 % each, a fault is essentially certain.
//! assert_ne!(model.inject(&ctx), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod map;
pub mod model_a;
pub mod model_b;
pub mod model_c;
pub mod operating_point;
pub mod table;

pub use map::alu_op_for_class;
pub use model_a::FixedProbabilityModel;
pub use model_b::{StaPeriodViolationModel, StaWithNoiseModel};
pub use model_c::StatisticalDtaModel;
pub use operating_point::OperatingPoint;
pub use table::DtaFaultTable;
