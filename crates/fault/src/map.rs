//! Mapping between the ISA-level ALU classes and the gate-level datapath
//! operations they activate.

use sfi_isa::AluClass;
use sfi_netlist::alu::AluOp;

/// The gate-level ALU operation characterized for a given instruction class.
///
/// # Example
///
/// ```
/// use sfi_fault::alu_op_for_class;
/// use sfi_isa::AluClass;
/// use sfi_netlist::alu::AluOp;
///
/// assert_eq!(alu_op_for_class(AluClass::Mul), AluOp::Mul);
/// assert_eq!(alu_op_for_class(AluClass::SfLtu), AluOp::SfLtu);
/// ```
pub fn alu_op_for_class(class: AluClass) -> AluOp {
    match class {
        AluClass::Add => AluOp::Add,
        AluClass::Sub => AluOp::Sub,
        AluClass::And => AluOp::And,
        AluClass::Or => AluOp::Or,
        AluClass::Xor => AluOp::Xor,
        AluClass::Sll => AluOp::Sll,
        AluClass::Srl => AluOp::Srl,
        AluClass::Sra => AluOp::Sra,
        AluClass::Mul => AluOp::Mul,
        AluClass::SfEq => AluOp::SfEq,
        AluClass::SfNe => AluOp::SfNe,
        AluClass::SfLtu => AluOp::SfLtu,
        AluClass::SfGeu => AluOp::SfGeu,
        AluClass::SfLts => AluOp::SfLts,
        AluClass::SfGes => AluOp::SfGes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_maps_to_a_distinct_op() {
        let ops: Vec<AluOp> = AluClass::ALL.iter().map(|&c| alu_op_for_class(c)).collect();
        for (i, a) in ops.iter().enumerate() {
            for (j, b) in ops.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
        assert_eq!(ops.len(), AluOp::ALL.len());
    }

    #[test]
    fn flag_classes_map_to_flag_ops() {
        for class in AluClass::ALL {
            assert_eq!(class.is_set_flag(), alu_op_for_class(class).is_set_flag());
        }
    }
}
