//! Model A: conventional purely random fault injection.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sfi_cpu::{ExStageContext, FaultInjector};

/// Fixed-probability random bit flips (the paper's **model A**).
///
/// Every endpoint bit of every ALU cycle flips independently with a fixed
/// probability, with no link to the operating conditions, the executed
/// instruction, or the circuit structure — the baseline whose inaccuracy
/// motivates the statistical model.
#[derive(Debug, Clone)]
pub struct FixedProbabilityModel {
    bit_flip_probability: f64,
    endpoint_count: usize,
    rng: SmallRng,
    seed: u64,
}

impl FixedProbabilityModel {
    /// Creates the model with a per-bit, per-cycle flip probability over
    /// `endpoint_count` endpoint bits.
    ///
    /// # Panics
    ///
    /// Panics if the probability is not in `[0, 1]` or `endpoint_count` is
    /// zero or larger than 32.
    pub fn new(bit_flip_probability: f64, endpoint_count: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&bit_flip_probability),
            "flip probability must be in [0, 1], got {bit_flip_probability}"
        );
        assert!(
            endpoint_count > 0 && endpoint_count <= 32,
            "endpoint count must be in 1..=32, got {endpoint_count}"
        );
        FixedProbabilityModel {
            bit_flip_probability,
            endpoint_count,
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The per-bit flip probability.
    pub fn bit_flip_probability(&self) -> f64 {
        self.bit_flip_probability
    }

    /// Number of endpoint bits faults can be injected into.
    pub fn endpoint_count(&self) -> usize {
        self.endpoint_count
    }

    /// Reseeds the internal random number generator (used to decorrelate
    /// Monte-Carlo trials).
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.rng = SmallRng::seed_from_u64(seed);
    }
}

impl FaultInjector for FixedProbabilityModel {
    fn inject(&mut self, ctx: &ExStageContext) -> u32 {
        if !ctx.fi_enabled || self.bit_flip_probability == 0.0 {
            return 0;
        }
        let mut mask = 0u32;
        for bit in 0..self.endpoint_count {
            if self.rng.gen_bool(self.bit_flip_probability) {
                mask |= 1 << bit;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_isa::AluClass;

    fn ctx(fi_enabled: bool) -> ExStageContext {
        ExStageContext {
            cycle: 0,
            alu_class: AluClass::Add,
            operand_a: 0,
            operand_b: 0,
            result: 0,
            fi_enabled,
        }
    }

    #[test]
    fn zero_probability_never_injects() {
        let mut m = FixedProbabilityModel::new(0.0, 32, 1);
        for _ in 0..1000 {
            assert_eq!(m.inject(&ctx(true)), 0);
        }
    }

    #[test]
    fn unit_probability_always_flips_everything() {
        let mut m = FixedProbabilityModel::new(1.0, 8, 1);
        assert_eq!(m.inject(&ctx(true)), 0xFF);
        assert_eq!(m.endpoint_count(), 8);
        assert_eq!(m.bit_flip_probability(), 1.0);
    }

    #[test]
    fn disabled_window_suppresses_injection() {
        let mut m = FixedProbabilityModel::new(1.0, 32, 1);
        assert_eq!(m.inject(&ctx(false)), 0);
    }

    #[test]
    fn empirical_rate_matches_probability() {
        let mut m = FixedProbabilityModel::new(0.01, 32, 7);
        let trials = 20_000;
        let mut flips = 0u64;
        for _ in 0..trials {
            flips += u64::from(m.inject(&ctx(true)).count_ones());
        }
        let rate = flips as f64 / (trials as f64 * 32.0);
        assert!((0.008..=0.012).contains(&rate), "rate {rate}");
    }

    #[test]
    fn reseeding_reproduces_sequences() {
        let mut a = FixedProbabilityModel::new(0.1, 32, 3);
        let mut b = FixedProbabilityModel::new(0.1, 32, 999);
        b.reseed(3);
        for _ in 0..100 {
            assert_eq!(a.inject(&ctx(true)), b.inject(&ctx(true)));
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_panics() {
        FixedProbabilityModel::new(1.5, 32, 0);
    }

    #[test]
    #[should_panic(expected = "endpoint count")]
    fn invalid_endpoint_count_panics() {
        FixedProbabilityModel::new(0.5, 0, 0);
    }
}
