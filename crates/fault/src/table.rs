//! Flattened, cache-friendly fault tables for the statistical DTA model.
//!
//! A [`TimingCharacterization`] stores one [`sfi_timing::ErrorCdf`] — a
//! separately allocated sorted `Vec<f64>` — per (instruction, endpoint)
//! pair.  The model C hot loop walks all endpoints of one instruction
//! every ALU cycle, so [`DtaFaultTable`] lays each instruction's
//! per-endpoint sorted delay samples out contiguously and precomputes the
//! instruction's worst observed delay.  That buys two things:
//!
//! * one flat slice walk per cycle instead of a pointer chase per
//!   endpoint, and
//! * an O(1) fast path: when the noise-scaled clock period meets or
//!   exceeds the instruction's worst delay, no endpoint can have a
//!   non-zero error probability and the whole per-endpoint loop is
//!   skipped.  This is bit-identical to walking the CDFs, because
//!   endpoints with probability zero draw no random numbers.
//!
//! The table is built once per characterization (typically at
//! [`CaseStudy`](../../sfi_core/study/struct.CaseStudy.html) construction)
//! and shared by every injector via `Arc`, so per-trial model
//! construction allocates nothing.

use sfi_netlist::alu::AluOp;
use sfi_timing::TimingCharacterization;
use std::sync::Arc;

/// The per-instruction flattened delay table of one characterization.
#[derive(Debug, Clone)]
pub struct DtaFaultTable {
    characterization: Arc<TimingCharacterization>,
    /// Endpoints covered by the mask computation (`min(width, 32)`, the
    /// result-register width of the ISS).
    endpoints: usize,
    /// One table per ALU instruction, indexed by `AluOp::code()`.
    ops: Vec<OpTable>,
}

/// Contiguous per-endpoint sorted delays of one instruction.
#[derive(Debug, Clone)]
struct OpTable {
    /// `delays[offsets[e] .. offsets[e + 1]]` are endpoint `e`'s sorted
    /// delay samples (ascending, exactly the CDF's backing data).
    offsets: Vec<u32>,
    delays: Vec<f64>,
    /// Worst observed delay over the covered endpoints, in picoseconds
    /// (`0.0` when every covered endpoint is empty — then nothing ever
    /// violates).
    max_delay_ps: f64,
}

impl DtaFaultTable {
    /// Flattens `characterization` into the per-instruction tables.
    pub fn new(characterization: Arc<TimingCharacterization>) -> Self {
        let endpoints = characterization.endpoint_count().min(32);
        let ops = AluOp::ALL
            .iter()
            .map(|&op| {
                let mut offsets = Vec::with_capacity(endpoints + 1);
                let mut delays = Vec::new();
                let mut max_delay_ps = 0.0f64;
                offsets.push(0);
                for endpoint in 0..endpoints {
                    let samples = characterization.cdf(op, endpoint).samples();
                    delays.extend_from_slice(samples);
                    offsets.push(delays.len() as u32);
                    if let Some(&worst) = samples.last() {
                        max_delay_ps = max_delay_ps.max(worst);
                    }
                }
                OpTable {
                    offsets,
                    delays,
                    max_delay_ps,
                }
            })
            .collect();
        DtaFaultTable {
            characterization,
            endpoints,
            ops,
        }
    }

    /// The characterization the table was flattened from.
    pub fn characterization(&self) -> &Arc<TimingCharacterization> {
        &self.characterization
    }

    /// Endpoints covered by [`DtaFaultTable::violation_mask`]
    /// (`min(width, 32)`).
    pub fn endpoint_count(&self) -> usize {
        self.endpoints
    }

    /// Worst observed delay of instruction `op` over the covered
    /// endpoints, in picoseconds.
    pub fn max_delay_ps(&self, op: AluOp) -> f64 {
        self.ops[op.code() as usize].max_delay_ps
    }

    /// Timing-error probability of `endpoint` under instruction `op` at an
    /// effective (noise-scaled) clock period of `threshold_ps`: the
    /// fraction of delay samples strictly exceeding the threshold.
    ///
    /// Matches `TimingCharacterization::error_probability` bit for bit on
    /// the same data.
    pub fn error_probability(&self, op: AluOp, endpoint: usize, threshold_ps: f64) -> f64 {
        let table = &self.ops[op.code() as usize];
        let slice =
            &table.delays[table.offsets[endpoint] as usize..table.offsets[endpoint + 1] as usize];
        if slice.is_empty() {
            return 0.0;
        }
        let idx = slice.partition_point(|&d| d <= threshold_ps);
        (slice.len() - idx) as f64 / slice.len() as f64
    }

    /// Draws the per-endpoint Bernoulli mask for instruction `op` at an
    /// effective clock period of `threshold_ps`, using `draw` for the
    /// random decisions.
    ///
    /// `draw` is invoked exactly for the endpoints with a non-zero error
    /// probability, in ascending endpoint order — the same random-number
    /// consumption pattern as querying the CDFs endpoint by endpoint, so
    /// fault sequences are bit-identical to the unflattened walk.
    pub fn violation_mask(
        &self,
        op: AluOp,
        threshold_ps: f64,
        mut draw: impl FnMut(f64) -> bool,
    ) -> u32 {
        let table = &self.ops[op.code() as usize];
        // Fast path: the worst sample of the whole instruction meets the
        // period, so every endpoint probability is zero and no random
        // numbers would be drawn anyway.
        if table.max_delay_ps <= threshold_ps {
            return 0;
        }
        let mut mask = 0u32;
        for endpoint in 0..self.endpoints {
            let p = self.error_probability(op, endpoint, threshold_ps);
            if p > 0.0 && draw(p) {
                mask |= 1 << endpoint;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_netlist::alu::AluDatapath;
    use sfi_netlist::{DelayModel, VoltageScaling};
    use sfi_timing::{characterize_alu, CharacterizationConfig};

    fn table() -> DtaFaultTable {
        let alu = AluDatapath::build(8);
        let ch = characterize_alu(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &CharacterizationConfig {
                cycles_per_op: 48,
                ..Default::default()
            },
        );
        DtaFaultTable::new(Arc::new(ch))
    }

    #[test]
    fn probabilities_match_the_characterization() {
        let t = table();
        let ch = t.characterization().clone();
        assert_eq!(t.endpoint_count(), 8);
        for op in AluOp::ALL {
            for endpoint in 0..8 {
                for scale in [0.5, 0.8, 0.95, 1.0, 1.2] {
                    let threshold = ch.sta_critical_path_ps() * scale;
                    assert_eq!(
                        t.error_probability(op, endpoint, threshold),
                        ch.cdf(op, endpoint).error_probability(threshold),
                        "{op:?} endpoint {endpoint} scale {scale}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_delay_matches_the_worst_cdf_sample() {
        let t = table();
        let ch = t.characterization().clone();
        for op in AluOp::ALL {
            let expected = (0..8)
                .filter_map(|e| ch.cdf(op, e).max_delay_ps())
                .fold(0.0, f64::max);
            assert_eq!(t.max_delay_ps(op), expected);
        }
    }

    #[test]
    fn fast_path_draws_nothing_at_long_periods() {
        let t = table();
        let long_period = t.max_delay_ps(AluOp::Mul);
        let mut draws = 0;
        let mask = t.violation_mask(AluOp::Mul, long_period, |_| {
            draws += 1;
            true
        });
        assert_eq!(mask, 0);
        assert_eq!(draws, 0, "equal-to-worst periods must not draw");
    }

    #[test]
    fn short_periods_violate_every_endpoint() {
        let t = table();
        let mask = t.violation_mask(AluOp::Mul, 0.0, |p| {
            assert!(p > 0.0 && p <= 1.0);
            true
        });
        assert_eq!(mask, 0xFF);
    }
}
