//! Operating points: clock frequency, supply voltage and supply noise.

use sfi_timing::{freq_mhz_to_period_ps, VoltageNoise};
use std::fmt;

/// One operating point of the core: the clock frequency it is (over-)clocked
/// to, the nominal supply voltage, and the supply-noise level.
///
/// # Example
///
/// ```
/// use sfi_fault::OperatingPoint;
///
/// let op = OperatingPoint::new(750.0, 0.7).with_noise_sigma_mv(10.0);
/// assert!((op.period_ps() - 1333.3).abs() < 0.1);
/// assert_eq!(op.noise().sigma_mv(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    freq_mhz: f64,
    vdd: f64,
    noise: VoltageNoise,
}

impl OperatingPoint {
    /// Creates a noiseless operating point.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` or `vdd` is not strictly positive.
    pub fn new(freq_mhz: f64, vdd: f64) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive, got {freq_mhz}");
        assert!(vdd > 0.0, "supply voltage must be positive, got {vdd}");
        OperatingPoint {
            freq_mhz,
            vdd,
            noise: VoltageNoise::none(),
        }
    }

    /// Sets the supply-noise standard deviation in millivolts.
    pub fn with_noise_sigma_mv(mut self, sigma_mv: f64) -> Self {
        self.noise = VoltageNoise::with_sigma_mv(sigma_mv);
        self
    }

    /// Sets the supply-noise model explicitly.
    pub fn with_noise(mut self, noise: VoltageNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Returns a copy at a different clock frequency (used by sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is not strictly positive.
    pub fn at_frequency(mut self, freq_mhz: f64) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive, got {freq_mhz}");
        self.freq_mhz = freq_mhz;
        self
    }

    /// The clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// The clock period in picoseconds.
    pub fn period_ps(&self) -> f64 {
        freq_mhz_to_period_ps(self.freq_mhz)
    }

    /// The nominal supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The supply-noise model.
    pub fn noise(&self) -> VoltageNoise {
        self.noise
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} MHz @ {:.2} V (noise sigma {:.0} mV)",
            self.freq_mhz,
            self.vdd,
            self.noise.sigma_mv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let op = OperatingPoint::new(707.0, 0.7).with_noise_sigma_mv(25.0);
        assert_eq!(op.freq_mhz(), 707.0);
        assert_eq!(op.vdd(), 0.7);
        assert_eq!(op.noise().sigma_mv(), 25.0);
        assert!((op.period_ps() - 1414.43).abs() < 0.01);
        assert!(op.to_string().contains("707.0 MHz"));
        let faster = op.at_frequency(800.0);
        assert_eq!(faster.freq_mhz(), 800.0);
        assert_eq!(faster.vdd(), 0.7);
    }

    #[test]
    fn explicit_noise_model() {
        let op = OperatingPoint::new(500.0, 0.8)
            .with_noise(VoltageNoise::with_sigma_mv(10.0).with_clip_sigmas(3.0));
        assert_eq!(op.noise().clip_sigmas(), 3.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_panics() {
        OperatingPoint::new(0.0, 0.7);
    }
}
