//! Model C: the proposed statistical, instruction-aware fault injection.

use crate::map::alu_op_for_class;
use crate::operating_point::OperatingPoint;
use crate::table::DtaFaultTable;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sfi_cpu::{ExStageContext, FaultInjector};
use sfi_timing::{TimingCharacterization, VddDelayCurve};
use std::sync::Arc;

/// Probabilistic period violation using DTA-extracted CDFs (the paper's
/// **model C**).
///
/// Every cycle the model:
///
/// 1. draws an independent supply-noise sample and converts it into a CDF
///    scaling factor through the fitted Vdd–delay curve,
/// 2. looks up the timing-error probability `P_{E,V,I}(f)` of every
///    endpoint for the instruction currently in the execution stage, and
/// 3. flips each endpoint bit with that probability.
///
/// This is the model that reproduces the gradual transition regions between
/// error-free operation and complete failure (Figs. 4–7 of the paper).
///
/// The expensive characterization data is shared behind `Arc`s (see
/// [`DtaFaultTable`]): constructing one injector per Monte-Carlo trial via
/// [`StatisticalDtaModel::from_table`] — or cloning per sweep point via
/// [`StatisticalDtaModel::at_frequency`] — allocates nothing.
#[derive(Debug, Clone)]
pub struct StatisticalDtaModel {
    table: Arc<DtaFaultTable>,
    point: OperatingPoint,
    curve: Arc<VddDelayCurve>,
    /// `point.period_ps()`, hoisted out of the per-cycle loop.
    period_ps: f64,
    /// `curve.delay_factor(point.vdd())`, the noise-independent
    /// denominator of the per-cycle scaling factor.
    nominal_factor: f64,
    rng: SmallRng,
}

impl StatisticalDtaModel {
    /// Creates the model from a timing characterization performed at the
    /// operating point's supply voltage.
    ///
    /// This flattens the characterization into a fresh [`DtaFaultTable`];
    /// callers constructing many injectors over the same characterization
    /// (one per Monte-Carlo trial) should build the table once and use the
    /// allocation-free [`StatisticalDtaModel::from_table`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the characterization voltage does not match the operating
    /// point (a different set of CDFs must be used per supply voltage, as
    /// the paper does).
    pub fn new(
        characterization: impl Into<Arc<TimingCharacterization>>,
        point: OperatingPoint,
        curve: impl Into<Arc<VddDelayCurve>>,
        seed: u64,
    ) -> Self {
        Self::from_table(
            Arc::new(DtaFaultTable::new(characterization.into())),
            point,
            curve.into(),
            seed,
        )
    }

    /// Creates the model from a prebuilt, shared fault table — the
    /// allocation-free per-trial constructor the campaign hot path uses.
    ///
    /// # Panics
    ///
    /// Panics if the table's characterization voltage does not match the
    /// operating point.
    pub fn from_table(
        table: Arc<DtaFaultTable>,
        point: OperatingPoint,
        curve: Arc<VddDelayCurve>,
        seed: u64,
    ) -> Self {
        assert!(
            (table.characterization().vdd() - point.vdd()).abs() < 1e-9,
            "characterization voltage {} V does not match operating point {} V",
            table.characterization().vdd(),
            point.vdd()
        );
        let nominal_factor = curve.delay_factor(point.vdd());
        StatisticalDtaModel {
            table,
            point,
            period_ps: point.period_ps(),
            nominal_factor,
            curve,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Reseeds the random number generator (used to decorrelate Monte-Carlo
    /// trials while reusing the expensive characterization).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// The operating point the model simulates.
    pub fn operating_point(&self) -> OperatingPoint {
        self.point
    }

    /// Returns a copy of the model at a different clock frequency, sharing
    /// the same characterization data (no allocation).
    pub fn at_frequency(&self, freq_mhz: f64, seed: u64) -> Self {
        Self::from_table(
            Arc::clone(&self.table),
            self.point.at_frequency(freq_mhz),
            Arc::clone(&self.curve),
            seed,
        )
    }

    /// The underlying characterization (e.g. to query CDFs for reporting).
    pub fn characterization(&self) -> &TimingCharacterization {
        self.table.characterization()
    }

    /// The shared flattened fault table.
    pub fn fault_table(&self) -> &Arc<DtaFaultTable> {
        &self.table
    }
}

impl FaultInjector for StatisticalDtaModel {
    fn inject(&mut self, ctx: &ExStageContext) -> u32 {
        // Step 1: per-cycle supply-noise sample -> CDF scaling factor.
        let noise = self.point.noise().sample_volts(&mut self.rng);
        if !ctx.fi_enabled {
            return 0;
        }
        let delay_factor = self.curve.noise_scaling_factor_with_nominal(
            self.point.vdd(),
            noise,
            self.nominal_factor,
        );
        debug_assert!(delay_factor > 0.0, "delay factor must be positive");
        let op = alu_op_for_class(ctx.alu_class);
        // delay * factor > period  <=>  delay > period / factor; computing
        // the scaled threshold once per cycle replaces one division per
        // endpoint with one comparison per endpoint.
        let threshold_ps = self.period_ps / delay_factor;

        // Steps 2 + 3: per-endpoint probabilities, independent Bernoulli
        // draws (skipped wholesale when the instruction's worst sample
        // meets the scaled period — the common case below the transition
        // region).
        let rng = &mut self.rng;
        self.table
            .violation_mask(op, threshold_ps, |p| rng.gen_bool(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_isa::AluClass;
    use sfi_netlist::alu::AluDatapath;
    use sfi_netlist::{DelayModel, VoltageScaling};
    use sfi_timing::{characterize_alu, CharacterizationConfig, VoltageNoise};

    fn characterization() -> TimingCharacterization {
        let alu = AluDatapath::build(8);
        characterize_alu(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &CharacterizationConfig {
                cycles_per_op: 64,
                ..Default::default()
            },
        )
    }

    fn curve() -> VddDelayCurve {
        VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5)
    }

    fn ctx(class: AluClass) -> ExStageContext {
        ExStageContext {
            cycle: 0,
            alu_class: class,
            operand_a: 0,
            operand_b: 0,
            result: 0,
            fi_enabled: true,
        }
    }

    fn fault_rate(model: &mut StatisticalDtaModel, class: AluClass, cycles: usize) -> f64 {
        let mut faults = 0usize;
        for _ in 0..cycles {
            faults += (model.inject(&ctx(class)) != 0) as usize;
        }
        faults as f64 / cycles as f64
    }

    #[test]
    fn no_faults_at_sta_limit_without_noise() {
        let ch = characterization();
        let point = OperatingPoint::new(ch.sta_limit_mhz(), 0.7);
        let mut m = StatisticalDtaModel::new(ch, point, curve(), 1);
        for class in AluClass::ALL {
            assert_eq!(m.inject(&ctx(class)), 0, "{class}");
        }
    }

    #[test]
    fn instruction_awareness() {
        let ch = characterization();
        // Pick a frequency between the multiplier's and the logic unit's
        // first-failure points: multiplications must fault, XORs must not.
        let f_mul = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        let f_xor = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Xor);
        let freq = f_mul * 1.2;
        assert!(freq < f_xor);
        let point = OperatingPoint::new(freq, 0.7);
        let mut m = StatisticalDtaModel::new(ch, point, curve(), 2);
        assert!(fault_rate(&mut m, AluClass::Mul, 500) > 0.0);
        assert_eq!(fault_rate(&mut m, AluClass::Xor, 500), 0.0);
    }

    #[test]
    fn fault_rate_grows_with_frequency() {
        let ch = characterization();
        let f0 = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        let point = OperatingPoint::new(f0 * 1.05, 0.7);
        let base = StatisticalDtaModel::new(ch, point, curve(), 3);
        let mut low = base.at_frequency(f0 * 1.05, 3);
        let mut high = base.at_frequency(f0 * 1.5, 3);
        // The frequency-shifted copies share the base model's table.
        assert!(Arc::ptr_eq(low.fault_table(), base.fault_table()));
        let r_low = fault_rate(&mut low, AluClass::Mul, 400);
        let r_high = fault_rate(&mut high, AluClass::Mul, 400);
        assert!(
            r_high > r_low,
            "rate must grow with frequency ({r_low} vs {r_high})"
        );
    }

    #[test]
    fn noise_enables_faults_below_the_nominal_first_failure() {
        let ch = characterization();
        let f0 = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        // Slightly below the nominal first-failure frequency.
        let quiet_point = OperatingPoint::new(f0 * 0.98, 0.7);
        let noisy_point = quiet_point.with_noise(VoltageNoise::with_sigma_mv(25.0));
        let mut quiet = StatisticalDtaModel::new(ch.clone(), quiet_point, curve(), 4);
        let mut noisy = StatisticalDtaModel::new(ch, noisy_point, curve(), 4);
        assert_eq!(fault_rate(&mut quiet, AluClass::Mul, 1000), 0.0);
        assert!(fault_rate(&mut noisy, AluClass::Mul, 1000) > 0.0);
    }

    #[test]
    fn reseed_reproduces_sequences() {
        let ch = characterization();
        let f0 = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        let point =
            OperatingPoint::new(f0 * 1.1, 0.7).with_noise(VoltageNoise::with_sigma_mv(10.0));
        let mut a = StatisticalDtaModel::new(ch.clone(), point, curve(), 9);
        let mut b = StatisticalDtaModel::new(ch, point, curve(), 77);
        b.reseed(9);
        for _ in 0..200 {
            assert_eq!(a.inject(&ctx(AluClass::Mul)), b.inject(&ctx(AluClass::Mul)));
        }
    }

    #[test]
    fn from_table_matches_new_bit_for_bit() {
        let ch = Arc::new(characterization());
        let table = Arc::new(DtaFaultTable::new(Arc::clone(&ch)));
        let f0 = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        let point =
            OperatingPoint::new(f0 * 1.2, 0.7).with_noise(VoltageNoise::with_sigma_mv(15.0));
        let shared_curve = Arc::new(curve());
        let mut fresh = StatisticalDtaModel::new(Arc::clone(&ch), point, curve(), 13);
        let mut pooled = StatisticalDtaModel::from_table(table, point, shared_curve, 13);
        for class in [AluClass::Mul, AluClass::Add, AluClass::Xor] {
            for _ in 0..300 {
                assert_eq!(fresh.inject(&ctx(class)), pooled.inject(&ctx(class)));
            }
        }
    }

    #[test]
    fn disabled_window_suppresses_injection() {
        let ch = characterization();
        let point = OperatingPoint::new(ch.sta_limit_mhz() * 2.0, 0.7);
        let mut m = StatisticalDtaModel::new(ch, point, curve(), 5);
        let mut off_ctx = ctx(AluClass::Mul);
        off_ctx.fi_enabled = false;
        assert_eq!(m.inject(&off_ctx), 0);
        assert!(m.characterization().endpoint_count() > 0);
        assert_eq!(m.operating_point().vdd(), 0.7);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn voltage_mismatch_panics() {
        let ch = characterization();
        StatisticalDtaModel::new(ch, OperatingPoint::new(700.0, 0.8), curve(), 0);
    }
}
