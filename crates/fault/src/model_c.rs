//! Model C: the proposed statistical, instruction-aware fault injection.

use crate::map::alu_op_for_class;
use crate::operating_point::OperatingPoint;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sfi_cpu::{ExStageContext, FaultInjector};
use sfi_timing::{TimingCharacterization, VddDelayCurve};

/// Probabilistic period violation using DTA-extracted CDFs (the paper's
/// **model C**).
///
/// Every cycle the model:
///
/// 1. draws an independent supply-noise sample and converts it into a CDF
///    scaling factor through the fitted Vdd–delay curve,
/// 2. looks up the timing-error probability `P_{E,V,I}(f)` of every
///    endpoint for the instruction currently in the execution stage, and
/// 3. flips each endpoint bit with that probability.
///
/// This is the model that reproduces the gradual transition regions between
/// error-free operation and complete failure (Figs. 4–7 of the paper).
#[derive(Debug, Clone)]
pub struct StatisticalDtaModel {
    characterization: TimingCharacterization,
    point: OperatingPoint,
    curve: VddDelayCurve,
    rng: SmallRng,
}

impl StatisticalDtaModel {
    /// Creates the model from a timing characterization performed at the
    /// operating point's supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if the characterization voltage does not match the operating
    /// point (a different set of CDFs must be used per supply voltage, as
    /// the paper does).
    pub fn new(
        characterization: TimingCharacterization,
        point: OperatingPoint,
        curve: VddDelayCurve,
        seed: u64,
    ) -> Self {
        assert!(
            (characterization.vdd() - point.vdd()).abs() < 1e-9,
            "characterization voltage {} V does not match operating point {} V",
            characterization.vdd(),
            point.vdd()
        );
        StatisticalDtaModel {
            characterization,
            point,
            curve,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Reseeds the random number generator (used to decorrelate Monte-Carlo
    /// trials while reusing the expensive characterization).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// The operating point the model simulates.
    pub fn operating_point(&self) -> OperatingPoint {
        self.point
    }

    /// Returns a copy of the model at a different clock frequency, sharing
    /// the same characterization data.
    pub fn at_frequency(&self, freq_mhz: f64, seed: u64) -> Self {
        StatisticalDtaModel {
            characterization: self.characterization.clone(),
            point: self.point.at_frequency(freq_mhz),
            curve: self.curve.clone(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying characterization (e.g. to query CDFs for reporting).
    pub fn characterization(&self) -> &TimingCharacterization {
        &self.characterization
    }
}

impl FaultInjector for StatisticalDtaModel {
    fn inject(&mut self, ctx: &ExStageContext) -> u32 {
        // Step 1: per-cycle supply-noise sample -> CDF scaling factor.
        let noise = self.point.noise().sample_volts(&mut self.rng);
        if !ctx.fi_enabled {
            return 0;
        }
        let delay_factor = self.curve.noise_scaling_factor(self.point.vdd(), noise);
        let op = alu_op_for_class(ctx.alu_class);
        let period_ps = self.point.period_ps();

        // Steps 2 + 3: per-endpoint probabilities, independent Bernoulli
        // draws.
        let mut mask = 0u32;
        for endpoint in 0..self.characterization.endpoint_count().min(32) {
            let p = self
                .characterization
                .error_probability(op, endpoint, period_ps, delay_factor);
            if p > 0.0 && self.rng.gen_bool(p) {
                mask |= 1 << endpoint;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_isa::AluClass;
    use sfi_netlist::alu::AluDatapath;
    use sfi_netlist::{DelayModel, VoltageScaling};
    use sfi_timing::{characterize_alu, CharacterizationConfig, VoltageNoise};

    fn characterization() -> TimingCharacterization {
        let alu = AluDatapath::build(8);
        characterize_alu(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &CharacterizationConfig {
                cycles_per_op: 64,
                ..Default::default()
            },
        )
    }

    fn curve() -> VddDelayCurve {
        VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5)
    }

    fn ctx(class: AluClass) -> ExStageContext {
        ExStageContext {
            cycle: 0,
            alu_class: class,
            operand_a: 0,
            operand_b: 0,
            result: 0,
            fi_enabled: true,
        }
    }

    fn fault_rate(model: &mut StatisticalDtaModel, class: AluClass, cycles: usize) -> f64 {
        let mut faults = 0usize;
        for _ in 0..cycles {
            faults += (model.inject(&ctx(class)) != 0) as usize;
        }
        faults as f64 / cycles as f64
    }

    #[test]
    fn no_faults_at_sta_limit_without_noise() {
        let ch = characterization();
        let point = OperatingPoint::new(ch.sta_limit_mhz(), 0.7);
        let mut m = StatisticalDtaModel::new(ch, point, curve(), 1);
        for class in AluClass::ALL {
            assert_eq!(m.inject(&ctx(class)), 0, "{class}");
        }
    }

    #[test]
    fn instruction_awareness() {
        let ch = characterization();
        // Pick a frequency between the multiplier's and the logic unit's
        // first-failure points: multiplications must fault, XORs must not.
        let f_mul = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        let f_xor = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Xor);
        let freq = f_mul * 1.2;
        assert!(freq < f_xor);
        let point = OperatingPoint::new(freq, 0.7);
        let mut m = StatisticalDtaModel::new(ch, point, curve(), 2);
        assert!(fault_rate(&mut m, AluClass::Mul, 500) > 0.0);
        assert_eq!(fault_rate(&mut m, AluClass::Xor, 500), 0.0);
    }

    #[test]
    fn fault_rate_grows_with_frequency() {
        let ch = characterization();
        let f0 = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        let point = OperatingPoint::new(f0 * 1.05, 0.7);
        let base = StatisticalDtaModel::new(ch, point, curve(), 3);
        let mut low = base.at_frequency(f0 * 1.05, 3);
        let mut high = base.at_frequency(f0 * 1.5, 3);
        let r_low = fault_rate(&mut low, AluClass::Mul, 400);
        let r_high = fault_rate(&mut high, AluClass::Mul, 400);
        assert!(
            r_high > r_low,
            "rate must grow with frequency ({r_low} vs {r_high})"
        );
    }

    #[test]
    fn noise_enables_faults_below_the_nominal_first_failure() {
        let ch = characterization();
        let f0 = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        // Slightly below the nominal first-failure frequency.
        let quiet_point = OperatingPoint::new(f0 * 0.98, 0.7);
        let noisy_point = quiet_point.with_noise(VoltageNoise::with_sigma_mv(25.0));
        let mut quiet = StatisticalDtaModel::new(ch.clone(), quiet_point, curve(), 4);
        let mut noisy = StatisticalDtaModel::new(ch, noisy_point, curve(), 4);
        assert_eq!(fault_rate(&mut quiet, AluClass::Mul, 1000), 0.0);
        assert!(fault_rate(&mut noisy, AluClass::Mul, 1000) > 0.0);
    }

    #[test]
    fn reseed_reproduces_sequences() {
        let ch = characterization();
        let f0 = ch.first_failure_frequency_mhz(sfi_netlist::alu::AluOp::Mul);
        let point =
            OperatingPoint::new(f0 * 1.1, 0.7).with_noise(VoltageNoise::with_sigma_mv(10.0));
        let mut a = StatisticalDtaModel::new(ch.clone(), point, curve(), 9);
        let mut b = StatisticalDtaModel::new(ch, point, curve(), 77);
        b.reseed(9);
        for _ in 0..200 {
            assert_eq!(a.inject(&ctx(AluClass::Mul)), b.inject(&ctx(AluClass::Mul)));
        }
    }

    #[test]
    fn disabled_window_suppresses_injection() {
        let ch = characterization();
        let point = OperatingPoint::new(ch.sta_limit_mhz() * 2.0, 0.7);
        let mut m = StatisticalDtaModel::new(ch, point, curve(), 5);
        let mut off_ctx = ctx(AluClass::Mul);
        off_ctx.fi_enabled = false;
        assert_eq!(m.inject(&off_ctx), 0);
        assert!(m.characterization().endpoint_count() > 0);
        assert_eq!(m.operating_point().vdd(), 0.7);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn voltage_mismatch_panics() {
        let ch = characterization();
        StatisticalDtaModel::new(ch, OperatingPoint::new(700.0, 0.8), curve(), 0);
    }
}
