//! Models B and B+: static-timing-based period-violation fault injection.

use crate::operating_point::OperatingPoint;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sfi_cpu::{ExStageContext, FaultInjector};
use sfi_timing::{TimingCharacterization, VddDelayCurve};
use std::sync::Arc;

/// Fixed period violation against STA worst-case delays (the paper's
/// **model B**).
///
/// Whenever *any* ALU instruction occupies the execution stage and the
/// clock period is shorter than the STA worst-case delay of an endpoint,
/// that endpoint bit is flipped — deterministically, with no view of the
/// instruction type or the data.  This is the pessimistic model whose
/// "hard threshold" behaviour Fig. 1(a) illustrates.
#[derive(Debug, Clone)]
pub struct StaPeriodViolationModel {
    endpoint_delays_ps: Arc<[f64]>,
    period_ps: f64,
}

impl StaPeriodViolationModel {
    /// Creates the model from the STA data of a characterization at the
    /// operating point's supply voltage.
    ///
    /// This copies the per-endpoint STA delays once; callers constructing
    /// one injector per Monte-Carlo trial should extract the delays once
    /// and use the allocation-free [`StaPeriodViolationModel::from_shared`]
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if the characterization was performed at a different supply
    /// voltage than the operating point requests (the STA delays would not
    /// correspond to the simulated conditions).
    pub fn new(characterization: &TimingCharacterization, point: OperatingPoint) -> Self {
        assert!(
            (characterization.vdd() - point.vdd()).abs() < 1e-9,
            "characterization voltage {} V does not match operating point {} V",
            characterization.vdd(),
            point.vdd()
        );
        let endpoint_delays_ps: Arc<[f64]> = (0..characterization.endpoint_count())
            .map(|e| characterization.sta_endpoint_delay_ps(e))
            .collect();
        StaPeriodViolationModel {
            endpoint_delays_ps,
            period_ps: point.period_ps(),
        }
    }

    /// Creates the model from an already-shared STA delay vector — the
    /// allocation-free per-trial constructor (the delays are typically
    /// extracted once per characterized voltage and `Arc`-cloned per
    /// trial).  `characterized_vdd` is the supply voltage the delays were
    /// extracted at; it is checked against the operating point exactly
    /// like [`StaPeriodViolationModel::new`] does.
    ///
    /// # Panics
    ///
    /// Panics if no delays are given or `characterized_vdd` does not
    /// match the operating point.
    pub fn from_shared(
        endpoint_delays_ps: Arc<[f64]>,
        characterized_vdd: f64,
        point: OperatingPoint,
    ) -> Self {
        assert!(
            (characterized_vdd - point.vdd()).abs() < 1e-9,
            "characterization voltage {} V does not match operating point {} V",
            characterized_vdd,
            point.vdd()
        );
        assert!(
            !endpoint_delays_ps.is_empty(),
            "at least one endpoint is required"
        );
        StaPeriodViolationModel {
            endpoint_delays_ps,
            period_ps: point.period_ps(),
        }
    }

    /// Creates the model directly from per-endpoint STA delays (ps).
    ///
    /// # Panics
    ///
    /// Panics if no delays are given or the period is not positive.
    pub fn from_delays(endpoint_delays_ps: Vec<f64>, period_ps: f64) -> Self {
        assert!(
            !endpoint_delays_ps.is_empty(),
            "at least one endpoint is required"
        );
        assert!(period_ps > 0.0, "period must be positive, got {period_ps}");
        StaPeriodViolationModel {
            endpoint_delays_ps: endpoint_delays_ps.into(),
            period_ps,
        }
    }

    fn violation_mask(&self, delay_factor: f64) -> u32 {
        let mut mask = 0u32;
        for (bit, &delay) in self.endpoint_delays_ps.iter().enumerate().take(32) {
            if delay * delay_factor > self.period_ps {
                mask |= 1 << bit;
            }
        }
        mask
    }
}

impl FaultInjector for StaPeriodViolationModel {
    fn inject(&mut self, ctx: &ExStageContext) -> u32 {
        if !ctx.fi_enabled {
            return 0;
        }
        self.violation_mask(1.0)
    }
}

/// Model B extended with per-cycle supply-voltage noise (the paper's
/// **model B+**).
///
/// Every cycle an independent noise sample modulates all path delays via
/// the fitted Vdd–delay curve; endpoints whose modulated STA delay exceeds
/// the clock period are flipped.  The model recovers a link to the
/// randomness of the physical circuit but still treats all ALU
/// instructions identically (Fig. 1(b)/(c)).
#[derive(Debug, Clone)]
pub struct StaWithNoiseModel {
    sta: StaPeriodViolationModel,
    point: OperatingPoint,
    curve: Arc<VddDelayCurve>,
    /// `curve.delay_factor(point.vdd())`, hoisted out of the per-cycle
    /// noise-scaling computation.
    nominal_factor: f64,
    rng: SmallRng,
}

impl StaWithNoiseModel {
    /// Creates the model from STA characterization data, an operating point
    /// and the fitted Vdd–delay curve.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`StaPeriodViolationModel::new`].
    pub fn new(
        characterization: &TimingCharacterization,
        point: OperatingPoint,
        curve: impl Into<Arc<VddDelayCurve>>,
        seed: u64,
    ) -> Self {
        Self::with_sta(
            StaPeriodViolationModel::new(characterization, point),
            point,
            curve.into(),
            seed,
        )
    }

    /// Creates the model from already-shared STA delays and Vdd–delay
    /// curve — the allocation-free per-trial constructor.
    /// `characterized_vdd` is the supply voltage the delays were extracted
    /// at.
    ///
    /// # Panics
    ///
    /// Panics if no delays are given or `characterized_vdd` does not
    /// match the operating point.
    pub fn from_shared(
        endpoint_delays_ps: Arc<[f64]>,
        characterized_vdd: f64,
        point: OperatingPoint,
        curve: Arc<VddDelayCurve>,
        seed: u64,
    ) -> Self {
        Self::with_sta(
            StaPeriodViolationModel::from_shared(endpoint_delays_ps, characterized_vdd, point),
            point,
            curve,
            seed,
        )
    }

    fn with_sta(
        sta: StaPeriodViolationModel,
        point: OperatingPoint,
        curve: Arc<VddDelayCurve>,
        seed: u64,
    ) -> Self {
        let nominal_factor = curve.delay_factor(point.vdd());
        StaWithNoiseModel {
            sta,
            point,
            curve,
            nominal_factor,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Reseeds the noise sequence (used to decorrelate Monte-Carlo trials).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// The operating point the model simulates.
    pub fn operating_point(&self) -> OperatingPoint {
        self.point
    }
}

impl FaultInjector for StaWithNoiseModel {
    fn inject(&mut self, ctx: &ExStageContext) -> u32 {
        // A new independent noise value is drawn every cycle, also outside
        // the kernel window, to keep the noise sequence cycle-aligned.
        let noise = self.point.noise().sample_volts(&mut self.rng);
        if !ctx.fi_enabled {
            return 0;
        }
        let factor = self.curve.noise_scaling_factor_with_nominal(
            self.point.vdd(),
            noise,
            self.nominal_factor,
        );
        self.sta.violation_mask(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_isa::AluClass;
    use sfi_netlist::alu::AluDatapath;
    use sfi_netlist::{DelayModel, VoltageScaling};
    use sfi_timing::{characterize_alu, CharacterizationConfig, VoltageNoise};

    fn characterization() -> TimingCharacterization {
        let alu = AluDatapath::build(8);
        characterize_alu(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &CharacterizationConfig {
                cycles_per_op: 32,
                ..Default::default()
            },
        )
    }

    fn ctx(fi_enabled: bool) -> ExStageContext {
        ExStageContext {
            cycle: 0,
            alu_class: AluClass::Add,
            operand_a: 0,
            operand_b: 0,
            result: 0,
            fi_enabled,
        }
    }

    #[test]
    fn model_b_hard_threshold() {
        let ch = characterization();
        let sta_limit = ch.sta_limit_mhz();
        // Below the STA limit: never any fault.
        let mut below =
            StaPeriodViolationModel::new(&ch, OperatingPoint::new(sta_limit * 0.99, 0.7));
        assert_eq!(below.inject(&ctx(true)), 0);
        // Just above the STA limit: the critical endpoint violates, for every
        // ALU instruction and every cycle.
        let mut above =
            StaPeriodViolationModel::new(&ch, OperatingPoint::new(sta_limit * 1.01, 0.7));
        let mask = above.inject(&ctx(true));
        assert_ne!(mask, 0);
        // Deterministic: the same mask every cycle.
        assert_eq!(above.inject(&ctx(true)), mask);
        // Outside the kernel window nothing is injected.
        assert_eq!(above.inject(&ctx(false)), 0);
    }

    #[test]
    fn model_b_msb_fails_first() {
        let ch = characterization();
        // Far above the limit every endpoint on the critical instruction
        // violates; the mask must include the most significant bits first
        // as frequency rises.
        let sta_limit = ch.sta_limit_mhz();
        let mut slightly =
            StaPeriodViolationModel::new(&ch, OperatingPoint::new(sta_limit * 1.02, 0.7));
        let mask_low = slightly.inject(&ctx(true));
        let mut far = StaPeriodViolationModel::new(&ch, OperatingPoint::new(sta_limit * 2.0, 0.7));
        let mask_high = far.inject(&ctx(true));
        assert!(mask_high.count_ones() >= mask_low.count_ones());
        assert_eq!(
            mask_low & mask_high,
            mask_low,
            "violations grow monotonically"
        );
    }

    #[test]
    fn from_delays_constructor() {
        let mut m = StaPeriodViolationModel::from_delays(vec![100.0, 300.0], 200.0);
        assert_eq!(m.inject(&ctx(true)), 0b10);
    }

    #[test]
    fn model_b_plus_noise_lowers_first_failure_frequency() {
        let ch = characterization();
        let curve = VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5);
        let sta_limit = ch.sta_limit_mhz();
        // Slightly below the STA limit: model B never injects, model B+ with
        // noise occasionally does (droop cycles).
        let point = OperatingPoint::new(sta_limit * 0.97, 0.7)
            .with_noise(VoltageNoise::with_sigma_mv(25.0));
        let mut b = StaPeriodViolationModel::new(&ch, OperatingPoint::new(sta_limit * 0.97, 0.7));
        let mut bp = StaWithNoiseModel::new(&ch, point, curve, 11);
        let mut b_faults = 0;
        let mut bp_faults = 0;
        for _ in 0..2000 {
            b_faults += (b.inject(&ctx(true)) != 0) as u32;
            bp_faults += (bp.inject(&ctx(true)) != 0) as u32;
        }
        assert_eq!(b_faults, 0);
        assert!(
            bp_faults > 0,
            "noise must occasionally cause violations below the STA limit"
        );
        assert!(
            bp_faults < 2000,
            "violations below the STA limit must be occasional, not constant"
        );
        assert_eq!(bp.operating_point().vdd(), 0.7);
    }

    #[test]
    fn model_b_plus_reseed_reproduces() {
        let ch = characterization();
        let curve = VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5);
        let point = OperatingPoint::new(ch.sta_limit_mhz() * 0.98, 0.7)
            .with_noise(VoltageNoise::with_sigma_mv(25.0));
        let mut a = StaWithNoiseModel::new(&ch, point, curve.clone(), 5);
        let mut b = StaWithNoiseModel::new(&ch, point, curve, 123);
        b.reseed(5);
        for _ in 0..200 {
            assert_eq!(a.inject(&ctx(true)), b.inject(&ctx(true)));
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn voltage_mismatch_panics() {
        let ch = characterization();
        StaPeriodViolationModel::new(&ch, OperatingPoint::new(700.0, 0.8));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_shared_checks_the_voltage_like_new() {
        let delays: Arc<[f64]> = vec![100.0, 200.0].into();
        StaPeriodViolationModel::from_shared(delays, 0.6, OperatingPoint::new(700.0, 0.7));
    }

    #[test]
    fn from_shared_matches_new() {
        let ch = characterization();
        let point = OperatingPoint::new(ch.sta_limit_mhz() * 1.05, 0.7);
        let delays: Arc<[f64]> = (0..ch.endpoint_count())
            .map(|e| ch.sta_endpoint_delay_ps(e))
            .collect();
        let mut a = StaPeriodViolationModel::new(&ch, point);
        let mut b = StaPeriodViolationModel::from_shared(delays, ch.vdd(), point);
        assert_eq!(a.inject(&ctx(true)), b.inject(&ctx(true)));
    }
}
