//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the subset of proptest the test suites use: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`any` strategies,
//! `prop_oneof!`, `prop::collection::vec`, `prop::sample::select`, the
//! [`proptest!`] macro and the `prop_assert*` macros.
//!
//! Failing cases panic through the ordinary `assert!` machinery and are
//! **not shrunk** — this is a test runner, not a minimizer.  Case generation is
//! deterministic: the RNG is seeded from a hash of the test name, so a
//! failure reproduces on every run.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runtime configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies while generating a case.
pub type TestRng = SmallRng;

/// Deterministic per-test runner: seeds the RNG from the test name.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(h),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The case-generation RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`; each arm is picked with equal probability.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Full-domain sampling for `any::<T>()`.
pub trait ArbitraryValue {
    /// Draws a value uniformly over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = rng.gen_range(-64i32..64) as f64;
        mantissa * exp.exp2()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating arbitrary values of `T` over its whole domain.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` namespace (collection and sample strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// The strategy returned by [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }

        /// Picks uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }
    }
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::{any, prop, Just, ProptestConfig, Strategy, TestRng, TestRunner, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::boxed($arm) ),+ ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same surface syntax as proptest's macro for simple cases:
/// an optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions with `pattern in strategy` parameter lists.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..runner.cases() {
                let ( $( $pat, )+ ) = ( $( $crate::Strategy::generate(&($strat), runner.rng()), )+ );
                $body
            }
        }
    )*};
}
