//! Property-based tests: the gate-level ALU datapath matches the
//! instruction-set reference semantics for arbitrary operands.

use proptest::prelude::*;
use sfi_netlist::alu::{AluDatapath, AluOp};

fn op_strategy() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alu8_matches_reference(op in op_strategy(), a in any::<u64>(), b in any::<u64>()) {
        let alu = AluDatapath::build(8);
        let inputs = alu.encode_inputs(op, a, b);
        prop_assert_eq!(alu.evaluate_result(&inputs), op.reference(a, b, 8));
    }

    #[test]
    fn alu16_matches_reference(op in op_strategy(), a in any::<u64>(), b in any::<u64>()) {
        let alu = AluDatapath::build(16);
        let inputs = alu.encode_inputs(op, a, b);
        prop_assert_eq!(alu.evaluate_result(&inputs), op.reference(a, b, 16));
    }

    #[test]
    fn reference_flag_ops_are_boolean(op in op_strategy(), a in any::<u64>(), b in any::<u64>()) {
        if op.is_set_flag() {
            prop_assert!(op.reference(a, b, 32) <= 1);
        }
    }
}
