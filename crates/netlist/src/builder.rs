//! Reusable structural building blocks: multiplexers, adder cells and small
//! vector helpers shared by the datapath builders.

use crate::netlist::{Netlist, NodeId};

/// A 2:1 multiplexer decomposed into primitive gates:
/// `out = (a AND NOT sel) OR (b AND sel)`.
///
/// Decomposing multiplexers keeps dynamic timing analysis purely in terms of
/// controlling values of simple gates: when the select settles early, the
/// unselected data path is killed at the AND gates and does not lengthen the
/// sensitised path.
pub fn mux2(n: &mut Netlist, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
    let nsel = n.not(sel);
    let pa = n.and2(a, nsel);
    let pb = n.and2(b, sel);
    n.or2(pa, pb)
}

/// A word-wide 2:1 multiplexer (one [`mux2`] per bit).
///
/// # Panics
///
/// Panics if `a` and `b` have different widths.
pub fn mux2_word(n: &mut Netlist, sel: NodeId, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len(), "mux2_word operands must have equal width");
    a.iter()
        .zip(b)
        .map(|(&ai, &bi)| mux2(n, sel, ai, bi))
        .collect()
}

/// A half adder; returns `(sum, carry)`.
pub fn half_adder(n: &mut Netlist, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    let sum = n.xor2(a, b);
    let carry = n.and2(a, b);
    (sum, carry)
}

/// A full adder built from two half adders; returns `(sum, carry)`.
pub fn full_adder(n: &mut Netlist, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = n.xor2(a, b);
    let sum = n.xor2(axb, cin);
    let g = n.and2(a, b);
    let p = n.and2(axb, cin);
    let carry = n.or2(g, p);
    (sum, carry)
}

/// Creates `width` constant-valued nodes representing `value` in
/// little-endian bit order (bit 0 first).
pub fn constant_word(n: &mut Netlist, value: u64, width: usize) -> Vec<NodeId> {
    (0..width)
        .map(|i| n.constant((value >> i) & 1 == 1))
        .collect()
}

/// Reduction OR over a slice of nodes (balanced tree).
///
/// # Panics
///
/// Panics if `nodes` is empty.
pub fn or_reduce(n: &mut Netlist, nodes: &[NodeId]) -> NodeId {
    assert!(!nodes.is_empty(), "or_reduce requires at least one node");
    let mut level: Vec<NodeId> = nodes.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(n.or2(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Reduction AND over a slice of nodes (balanced tree).
///
/// # Panics
///
/// Panics if `nodes` is empty.
pub fn and_reduce(n: &mut Netlist, nodes: &[NodeId]) -> NodeId {
    assert!(!nodes.is_empty(), "and_reduce requires at least one node");
    let mut level: Vec<NodeId> = nodes.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(n.and2(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Converts a `u64` into `width` boolean values, little-endian.
pub fn to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Converts a little-endian slice of boolean values into a `u64`.
///
/// # Panics
///
/// Panics if `bits.len() > 64`.
pub fn from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "from_bits supports at most 64 bits");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(n: &Netlist, inputs: &[bool]) -> bool {
        n.evaluate(inputs)[0]
    }

    #[test]
    fn mux2_selects() {
        let mut n = Netlist::new();
        let s = n.add_input("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let o = mux2(&mut n, s, a, b);
        n.mark_output(o, "o");
        // sel = 0 -> a, sel = 1 -> b
        assert!(eval1(&n, &[false, true, false]));
        assert!(!eval1(&n, &[false, false, true]));
        assert!(!eval1(&n, &[true, true, false]));
        assert!(eval1(&n, &[true, false, true]));
    }

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let (s, co) = full_adder(&mut n, a, b, c);
        n.mark_output(s, "s");
        n.mark_output(co, "co");
        for i in 0..8u32 {
            let bits = [i & 1 != 0, i & 2 != 0, i & 4 != 0];
            let expect = bits.iter().filter(|&&x| x).count() as u32;
            let out = n.evaluate(&bits);
            let got = out[0] as u32 + 2 * (out[1] as u32);
            assert_eq!(got, expect, "inputs {bits:?}");
        }
    }

    #[test]
    fn half_adder_truth_table() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let (s, c) = half_adder(&mut n, a, b);
        n.mark_output(s, "s");
        n.mark_output(c, "c");
        assert_eq!(n.evaluate(&[true, true]), vec![false, true]);
        assert_eq!(n.evaluate(&[true, false]), vec![true, false]);
    }

    #[test]
    fn reductions() {
        let mut n = Netlist::new();
        let bits: Vec<NodeId> = (0..5).map(|i| n.add_input(format!("i{i}"))).collect();
        let any = or_reduce(&mut n, &bits);
        let all = and_reduce(&mut n, &bits);
        n.mark_output(any, "any");
        n.mark_output(all, "all");
        assert_eq!(n.evaluate(&[false; 5]), vec![false, false]);
        assert_eq!(n.evaluate(&[true; 5]), vec![true, true]);
        assert_eq!(
            n.evaluate(&[false, false, true, false, false]),
            vec![true, false]
        );
    }

    #[test]
    fn bit_conversions_roundtrip() {
        for v in [0u64, 1, 0xdead_beef, u32::MAX as u64] {
            assert_eq!(from_bits(&to_bits(v, 32)), v & 0xffff_ffff);
        }
        assert_eq!(to_bits(5, 4), vec![true, false, true, false]);
    }

    #[test]
    fn constant_word_values() {
        let mut n = Netlist::new();
        let w = constant_word(&mut n, 0b1010, 4);
        for (i, &node) in w.iter().enumerate() {
            n.mark_output(node, format!("c{i}"));
        }
        assert_eq!(n.evaluate(&[]), vec![false, true, false, true]);
    }

    #[test]
    fn mux2_word_width() {
        let mut n = Netlist::new();
        let s = n.add_input("s");
        let a: Vec<NodeId> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
        let out = mux2_word(&mut n, s, &a, &b);
        assert_eq!(out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mux2_word_mismatched_widths_panic() {
        let mut n = Netlist::new();
        let s = n.add_input("s");
        let a = vec![n.add_input("a0")];
        let b = vec![n.add_input("b0"), n.add_input("b1")];
        mux2_word(&mut n, s, &a, &b);
    }
}
