//! The execution-stage ALU datapath whose result register bits are the
//! fault-injection endpoints of the whole flow.
//!
//! The datapath combines an adder/subtractor, a Wallace-tree multiplier, a
//! barrel shifter, a bitwise logic unit and a comparator behind an AND–OR
//! result multiplexer selected by a one-hot decoded operation code.  Its
//! `width` result bits (32 in the paper's case study) are registered in the
//! EX-stage pipeline register; timing violations on those flip-flops are the
//! faults that the ISS injects.

use crate::adder::add_sub;
use crate::builder::{and_reduce, from_bits, to_bits};
use crate::comparator::comparator;
use crate::logic::{and_word, or_word, xor_word};
use crate::multiplier::wallace_multiplier;
use crate::netlist::{Netlist, NodeId};
use crate::shifter::{barrel_shifter, ShiftKind};
use std::fmt;

/// Operations implemented by the execution-stage ALU.
///
/// These correspond to the OpenRISC ALU instructions the paper's dynamic
/// timing analysis characterizes individually (`l.add`, `l.sub`, `l.mul`,
/// `l.and`, `l.or`, `l.xor`, `l.sll`, `l.srl`, `l.sra`, and the `l.sf*`
/// set-flag comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Addition (`l.add`, `l.addi`).
    Add,
    /// Subtraction (`l.sub`).
    Sub,
    /// Bitwise AND (`l.and`, `l.andi`).
    And,
    /// Bitwise OR (`l.or`, `l.ori`).
    Or,
    /// Bitwise XOR (`l.xor`, `l.xori`).
    Xor,
    /// Shift left logical (`l.sll`, `l.slli`).
    Sll,
    /// Shift right logical (`l.srl`, `l.srli`).
    Srl,
    /// Shift right arithmetic (`l.sra`, `l.srai`).
    Sra,
    /// Low-half multiplication (`l.mul`, `l.muli`).
    Mul,
    /// Set flag if equal (`l.sfeq`).
    SfEq,
    /// Set flag if not equal (`l.sfne`).
    SfNe,
    /// Set flag if less than, unsigned (`l.sfltu`).
    SfLtu,
    /// Set flag if greater or equal, unsigned (`l.sfgeu`).
    SfGeu,
    /// Set flag if less than, signed (`l.sflts`).
    SfLts,
    /// Set flag if greater or equal, signed (`l.sfges`).
    SfGes,
}

impl AluOp {
    /// All ALU operations, in select-code order.
    pub const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Mul,
        AluOp::SfEq,
        AluOp::SfNe,
        AluOp::SfLtu,
        AluOp::SfGeu,
        AluOp::SfLts,
        AluOp::SfGes,
    ];

    /// Numeric select code of the operation (index into [`AluOp::ALL`]).
    pub fn code(self) -> u8 {
        AluOp::ALL
            .iter()
            .position(|&op| op == self)
            .expect("op in ALL") as u8
    }

    /// The operation corresponding to a select code, if valid.
    pub fn from_code(code: u8) -> Option<AluOp> {
        AluOp::ALL.get(code as usize).copied()
    }

    /// Whether the operation produces a single flag bit (set-flag
    /// comparisons) rather than a full-width result.
    pub fn is_set_flag(self) -> bool {
        matches!(
            self,
            AluOp::SfEq | AluOp::SfNe | AluOp::SfLtu | AluOp::SfGeu | AluOp::SfLts | AluOp::SfGes
        )
    }

    /// Reference (golden) result of the operation on `width`-bit operands.
    ///
    /// Set-flag operations return 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn reference(self, a: u64, b: u64, width: usize) -> u64 {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let a = a & mask;
        let b = b & mask;
        let sign = |x: u64| -> i64 {
            if width == 64 {
                x as i64
            } else if x >> (width - 1) & 1 == 1 {
                (x | !mask) as i64
            } else {
                x as i64
            }
        };
        let shamt = (b % width as u64) as u32;
        let result = match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a << shamt,
            AluOp::Srl => a >> shamt,
            AluOp::Sra => (sign(a) >> shamt) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::SfEq => (a == b) as u64,
            AluOp::SfNe => (a != b) as u64,
            AluOp::SfLtu => (a < b) as u64,
            AluOp::SfGeu => (a >= b) as u64,
            AluOp::SfLts => (sign(a) < sign(b)) as u64,
            AluOp::SfGes => (sign(a) >= sign(b)) as u64,
        };
        result & mask
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "l.add",
            AluOp::Sub => "l.sub",
            AluOp::And => "l.and",
            AluOp::Or => "l.or",
            AluOp::Xor => "l.xor",
            AluOp::Sll => "l.sll",
            AluOp::Srl => "l.srl",
            AluOp::Sra => "l.sra",
            AluOp::Mul => "l.mul",
            AluOp::SfEq => "l.sfeq",
            AluOp::SfNe => "l.sfne",
            AluOp::SfLtu => "l.sfltu",
            AluOp::SfGeu => "l.sfgeu",
            AluOp::SfLts => "l.sflts",
            AluOp::SfGes => "l.sfges",
        };
        f.write_str(s)
    }
}

/// Number of operation-select input bits of the datapath.
pub const OP_SELECT_BITS: usize = 4;

/// Functional units of the execution-stage datapath.
///
/// Every gate of the [`AluDatapath`] netlist belongs to exactly one unit;
/// the mapping is used by the synthesis-like timing-budgeting pass in
/// `sfi-timing` to emulate the paper's constraint strategy (every datapath
/// unit just meets the clock constraint, and only the ALU endpoints limit
/// the maximum frequency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluUnit {
    /// Primary inputs and the one-hot operation decoder.
    OpDecode,
    /// The adder/subtractor.
    AddSub,
    /// The single-cycle multiplier.
    Multiplier,
    /// The three barrel shifters (left, logical right, arithmetic right).
    Shifter,
    /// The bitwise logic unit.
    Logic,
    /// The set-flag comparator.
    Comparator,
    /// The AND–OR result multiplexer and flag-word packing.
    ResultMux,
}

impl AluUnit {
    /// All functional units in build order.
    pub const ALL: [AluUnit; 7] = [
        AluUnit::OpDecode,
        AluUnit::AddSub,
        AluUnit::Multiplier,
        AluUnit::Shifter,
        AluUnit::Logic,
        AluUnit::Comparator,
        AluUnit::ResultMux,
    ];
}

impl fmt::Display for AluUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluUnit::OpDecode => "op-decode",
            AluUnit::AddSub => "add-sub",
            AluUnit::Multiplier => "multiplier",
            AluUnit::Shifter => "shifter",
            AluUnit::Logic => "logic",
            AluUnit::Comparator => "comparator",
            AluUnit::ResultMux => "result-mux",
        };
        f.write_str(s)
    }
}

/// The gate-level execution-stage ALU datapath.
///
/// # Example
///
/// ```
/// use sfi_netlist::alu::{AluDatapath, AluOp};
///
/// let alu = AluDatapath::build(16);
/// let inputs = alu.encode_inputs(AluOp::Mul, 300, 7);
/// assert_eq!(alu.evaluate_result(&inputs), (300 * 7) & 0xFFFF);
/// assert_eq!(alu.endpoint_count(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct AluDatapath {
    netlist: Netlist,
    width: usize,
    unit_ranges: Vec<(AluUnit, std::ops::Range<usize>)>,
}

impl AluDatapath {
    /// Builds the datapath for `width`-bit operands (the paper's case study
    /// uses 32).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two in `4..=64`.
    pub fn build(width: usize) -> Self {
        assert!(
            width.is_power_of_two() && (4..=64).contains(&width),
            "ALU width must be a power of two between 4 and 64, got {width}"
        );
        let mut n = Netlist::new();
        let mut unit_ranges: Vec<(AluUnit, std::ops::Range<usize>)> = Vec::new();
        let mut unit_start = 0usize;
        let close_unit = |n: &Netlist,
                          ranges: &mut Vec<(AluUnit, std::ops::Range<usize>)>,
                          start: &mut usize,
                          unit: AluUnit| {
            ranges.push((unit, *start..n.len()));
            *start = n.len();
        };

        let a: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("a[{i}]"))).collect();
        let b: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("b[{i}]"))).collect();
        let op: Vec<NodeId> = (0..OP_SELECT_BITS)
            .map(|i| n.add_input(format!("op[{i}]")))
            .collect();
        let op_n: Vec<NodeId> = op.iter().map(|&o| n.not(o)).collect();

        // One-hot decode of the operation select code.
        let mut onehot = Vec::with_capacity(AluOp::ALL.len());
        for alu_op in AluOp::ALL {
            let code = alu_op.code();
            let bits: Vec<NodeId> = (0..OP_SELECT_BITS)
                .map(|i| if code >> i & 1 == 1 { op[i] } else { op_n[i] })
                .collect();
            onehot.push(and_reduce(&mut n, &bits));
        }
        close_unit(&n, &mut unit_ranges, &mut unit_start, AluUnit::OpDecode);

        // Functional units.
        let sub_sel = {
            // Subtraction is also used by the comparator; for the Add/Sub
            // unit the select is simply "operation is Sub".
            onehot[AluOp::Sub.code() as usize]
        };
        let addsub = add_sub(&mut n, &a, &b, sub_sel);
        close_unit(&n, &mut unit_ranges, &mut unit_start, AluUnit::AddSub);
        let mul = wallace_multiplier(&mut n, &a, &b);
        close_unit(&n, &mut unit_ranges, &mut unit_start, AluUnit::Multiplier);
        let sll = barrel_shifter(&mut n, &a, &b, ShiftKind::LogicalLeft);
        let srl = barrel_shifter(&mut n, &a, &b, ShiftKind::LogicalRight);
        let sra = barrel_shifter(&mut n, &a, &b, ShiftKind::ArithmeticRight);
        close_unit(&n, &mut unit_ranges, &mut unit_start, AluUnit::Shifter);
        let and_w = and_word(&mut n, &a, &b);
        let or_w = or_word(&mut n, &a, &b);
        let xor_w = xor_word(&mut n, &a, &b);
        close_unit(&n, &mut unit_ranges, &mut unit_start, AluUnit::Logic);
        let cmp = comparator(&mut n, &a, &b);
        close_unit(&n, &mut unit_ranges, &mut unit_start, AluUnit::Comparator);

        // Word-wide sources per operation (set-flag results live in bit 0).
        let zero = n.constant(false);
        let flag_word = |flag: NodeId| -> Vec<NodeId> {
            let mut word = vec![zero; width];
            word[0] = flag;
            word
        };
        let sources: Vec<Vec<NodeId>> = vec![
            addsub.sum.clone(), // Add
            addsub.sum.clone(), // Sub (same unit, sub select)
            and_w,              // And
            or_w,               // Or
            xor_w,              // Xor
            sll,                // Sll
            srl,                // Srl
            sra,                // Sra
            mul,                // Mul
            flag_word(cmp.eq),  // SfEq
            flag_word(cmp.ne),  // SfNe
            flag_word(cmp.ltu), // SfLtu
            flag_word(cmp.geu), // SfGeu
            flag_word(cmp.lts), // SfLts
            flag_word(cmp.ges), // SfGes
        ];

        // AND-OR result multiplexer: result[i] = OR over ops of (onehot & source[i]).
        for bit in 0..width {
            let mut terms = Vec::with_capacity(sources.len());
            for (op_idx, source) in sources.iter().enumerate() {
                terms.push(n.and2(onehot[op_idx], source[bit]));
            }
            let result = crate::builder::or_reduce(&mut n, &terms);
            n.mark_output(result, format!("result[{bit}]"));
        }
        close_unit(&n, &mut unit_ranges, &mut unit_start, AluUnit::ResultMux);

        AluDatapath {
            netlist: n,
            width,
            unit_ranges,
        }
    }

    /// The functional unit each contiguous range of gates belongs to, in
    /// build order.  Every gate index of the netlist is covered exactly once.
    pub fn unit_ranges(&self) -> &[(AluUnit, std::ops::Range<usize>)] {
        &self.unit_ranges
    }

    /// The functional unit the gate at `index` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the netlist.
    pub fn unit_of(&self, index: usize) -> AluUnit {
        assert!(
            index < self.netlist.len(),
            "gate index {index} out of range"
        );
        self.unit_ranges
            .iter()
            .find(|(_, r)| r.contains(&index))
            .map(|(u, _)| *u)
            .expect("unit ranges cover the whole netlist")
    }

    /// The underlying gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Operand width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of fault-injection endpoints (= result register bits).
    pub fn endpoint_count(&self) -> usize {
        self.width
    }

    /// Encodes a primary-input assignment for the given operation and
    /// operand values (operands are truncated to the datapath width).
    pub fn encode_inputs(&self, op: AluOp, a: u64, b: u64) -> Vec<bool> {
        let mut inputs = to_bits(a, self.width);
        inputs.extend(to_bits(b, self.width));
        inputs.extend(to_bits(op.code() as u64, OP_SELECT_BITS));
        inputs
    }

    /// Evaluates the datapath and returns the numeric result value.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the netlist's input count.
    pub fn evaluate_result(&self, inputs: &[bool]) -> u64 {
        from_bits(&self.netlist.evaluate(inputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codes_roundtrip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_code(op.code()), Some(op));
        }
        assert_eq!(AluOp::from_code(15), None);
        assert_eq!(AluOp::from_code(200), None);
    }

    #[test]
    fn set_flag_classification() {
        assert!(AluOp::SfEq.is_set_flag());
        assert!(AluOp::SfGes.is_set_flag());
        assert!(!AluOp::Add.is_set_flag());
        assert!(!AluOp::Mul.is_set_flag());
    }

    #[test]
    fn display_uses_openrisc_mnemonics() {
        assert_eq!(AluOp::Add.to_string(), "l.add");
        assert_eq!(AluOp::SfLtu.to_string(), "l.sfltu");
    }

    #[test]
    fn reference_semantics() {
        assert_eq!(AluOp::Add.reference(0xFFFF_FFFF, 1, 32), 0);
        assert_eq!(AluOp::Sub.reference(0, 1, 32), 0xFFFF_FFFF);
        assert_eq!(AluOp::Mul.reference(0x1_0000, 0x1_0000, 32), 0);
        assert_eq!(AluOp::Sra.reference(0x8000_0000, 31, 32), 0xFFFF_FFFF);
        assert_eq!(AluOp::SfLts.reference(0xFFFF_FFFF, 0, 32), 1); // -1 < 0
        assert_eq!(AluOp::SfLtu.reference(0xFFFF_FFFF, 0, 32), 0);
        assert_eq!(AluOp::Sll.reference(1, 4, 16), 16);
    }

    #[test]
    fn alu_16bit_matches_reference() {
        let alu = AluDatapath::build(16);
        let cases: [(u64, u64); 6] = [
            (0, 0),
            (0xFFFF, 1),
            (1234, 4321),
            (0x8000, 0x7FFF),
            (42, 42),
            (0xAAAA, 0x5555),
        ];
        for op in AluOp::ALL {
            for (a, b) in cases {
                let inputs = alu.encode_inputs(op, a, b);
                let got = alu.evaluate_result(&inputs);
                let expect = op.reference(a, b, 16);
                assert_eq!(got, expect, "{op} a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn alu_8bit_exhaustive_add_mul() {
        let alu = AluDatapath::build(8);
        for a in (0..256u64).step_by(17) {
            for b in (0..256u64).step_by(13) {
                for op in [AluOp::Add, AluOp::Mul, AluOp::Sub] {
                    let inputs = alu.encode_inputs(op, a, b);
                    assert_eq!(alu.evaluate_result(&inputs), op.reference(a, b, 8));
                }
            }
        }
    }

    #[test]
    fn unit_ranges_cover_netlist() {
        let alu = AluDatapath::build(8);
        let ranges = alu.unit_ranges();
        assert_eq!(ranges.first().unwrap().1.start, 0);
        assert_eq!(ranges.last().unwrap().1.end, alu.netlist().len());
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1.end, pair[1].1.start, "ranges must be contiguous");
        }
        // Every unit appears exactly once and in build order.
        let units: Vec<AluUnit> = ranges.iter().map(|(u, _)| *u).collect();
        assert_eq!(units, AluUnit::ALL.to_vec());
        // Spot-check membership queries.
        assert_eq!(alu.unit_of(0), AluUnit::OpDecode);
        assert_eq!(alu.unit_of(alu.netlist().len() - 1), AluUnit::ResultMux);
    }

    #[test]
    fn unit_display_names() {
        assert_eq!(AluUnit::Multiplier.to_string(), "multiplier");
        assert_eq!(AluUnit::ResultMux.to_string(), "result-mux");
    }

    #[test]
    fn endpoint_count_matches_width() {
        let alu = AluDatapath::build(8);
        assert_eq!(alu.endpoint_count(), 8);
        assert_eq!(alu.netlist().output_count(), 8);
        assert_eq!(alu.width(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_width_panics() {
        AluDatapath::build(12);
    }
}
