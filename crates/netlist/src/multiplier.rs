//! Single-cycle multiplier builder.
//!
//! The modelled OpenRISC core performs 32-bit multiplications in a single
//! cycle, which is why the multiplier dominates the critical path (the STA
//! limit of 707 MHz @ 0.7 V in the paper).  We build a Wallace-style
//! column-compression multiplier: an AND-array of partial products, reduced
//! with carry-save (3:2) and half-adder (2:2) compressors, followed by a
//! final Kogge–Stone carry-propagate adder.  Only the low `width` result
//! bits are produced, matching the `l.mul` semantics used by the benchmarks.

use crate::adder::kogge_stone_adder;
use crate::builder::{full_adder, half_adder};
use crate::netlist::{Netlist, NodeId};

/// Instantiates a `width × width → width` (low half) Wallace-tree multiplier.
///
/// Returns the little-endian product bits.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn wallace_multiplier(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert!(!a.is_empty(), "multiplier width must be non-zero");
    assert_eq!(
        a.len(),
        b.len(),
        "multiplier operands must have equal width"
    );
    let width = a.len();

    // Column-wise partial products for the low half of the product only.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); width];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let col = i + j;
            if col < width {
                columns[col].push(n.and2(aj, bi));
            }
        }
    }

    // Column compression: repeatedly apply 3:2 and 2:2 compressors until
    // every column holds at most two bits.
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); width];
        for col in 0..width {
            let bits = std::mem::take(&mut columns[col]);
            let mut iter = bits.into_iter().peekable();
            while iter.peek().is_some() {
                let first = iter.next().expect("peeked");
                match (iter.next(), iter.next()) {
                    (Some(second), Some(third)) => {
                        let (s, c) = full_adder(n, first, second, third);
                        next[col].push(s);
                        if col + 1 < width {
                            next[col + 1].push(c);
                        }
                    }
                    (Some(second), None) => {
                        let (s, c) = half_adder(n, first, second);
                        next[col].push(s);
                        if col + 1 < width {
                            next[col + 1].push(c);
                        }
                    }
                    (None, _) => next[col].push(first),
                }
            }
        }
        columns = next;
    }

    // Final carry-propagate addition of the two remaining rows.
    let zero = n.constant(false);
    let row_a: Vec<NodeId> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NodeId> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let out = kogge_stone_adder(n, &row_a, &row_b, zero);
    out.sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_bits, to_bits};

    fn build(width: usize) -> Netlist {
        let mut n = Netlist::new();
        let a: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let p = wallace_multiplier(&mut n, &a, &b);
        assert_eq!(p.len(), width);
        for (i, bit) in p.iter().enumerate() {
            n.mark_output(*bit, format!("p{i}"));
        }
        n
    }

    fn run(n: &Netlist, width: usize, a: u64, b: u64) -> u64 {
        let mut inputs = to_bits(a, width);
        inputs.extend(to_bits(b, width));
        from_bits(&n.evaluate(&inputs))
    }

    #[test]
    fn mul_4bit_exhaustive() {
        let n = build(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(run(&n, 4, a, b), (a * b) & 0xF, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mul_8bit_samples() {
        let n = build(8);
        for (a, b) in [(0u64, 0u64), (255, 255), (17, 13), (128, 2), (99, 77)] {
            assert_eq!(run(&n, 8, a, b), (a * b) & 0xFF);
        }
    }

    #[test]
    fn mul_16bit_samples() {
        let n = build(16);
        for (a, b) in [(1234u64, 4321u64), (65535, 65535), (40000, 3), (256, 256)] {
            assert_eq!(run(&n, 16, a, b), (a * b) & 0xFFFF);
        }
    }

    #[test]
    fn multiplier_is_deeper_than_prefix_adder() {
        let mul = build(16);
        let mut add = Netlist::new();
        let a: Vec<NodeId> = (0..16).map(|i| add.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..16).map(|i| add.add_input(format!("b{i}"))).collect();
        let cin = add.constant(false);
        let out = kogge_stone_adder(&mut add, &a, &b, cin);
        for (i, s) in out.sum.iter().enumerate() {
            add.mark_output(*s, format!("s{i}"));
        }
        assert!(mul.max_output_depth() > add.max_output_depth());
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_widths_panic() {
        let mut n = Netlist::new();
        let a = vec![n.add_input("a0")];
        let b = vec![n.add_input("b0"), n.add_input("b1")];
        wallace_multiplier(&mut n, &a, &b);
    }
}
