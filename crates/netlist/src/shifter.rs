//! Logarithmic barrel shifter builder (logical left/right and arithmetic
//! right shifts).

use crate::builder::mux2;
use crate::netlist::{Netlist, NodeId};

/// Shift direction / kind supported by the barrel shifter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftKind {
    /// Logical shift left, filling with zeros.
    LogicalLeft,
    /// Logical shift right, filling with zeros.
    LogicalRight,
    /// Arithmetic shift right, replicating the sign bit.
    ArithmeticRight,
}

/// Instantiates a logarithmic barrel shifter of the given kind.
///
/// `amount` supplies the shift amount bits, little-endian; only
/// `log2(width)` bits are consumed (the remainder are ignored, matching the
/// OpenRISC semantics of masking the shift amount).
///
/// # Panics
///
/// Panics if `a` is empty or `width` is not a power of two.
pub fn barrel_shifter(
    n: &mut Netlist,
    a: &[NodeId],
    amount: &[NodeId],
    kind: ShiftKind,
) -> Vec<NodeId> {
    let width = a.len();
    assert!(
        width > 0 && width.is_power_of_two(),
        "barrel shifter width must be a power of two"
    );
    let stages = width.trailing_zeros() as usize;
    assert!(
        amount.len() >= stages,
        "shift amount must provide at least log2(width) bits"
    );

    let zero = n.constant(false);
    let fill = match kind {
        ShiftKind::ArithmeticRight => *a.last().expect("non-empty operand"),
        _ => zero,
    };

    let mut current: Vec<NodeId> = a.to_vec();
    for (stage, &sel) in amount.iter().enumerate().take(stages) {
        let shift = 1usize << stage;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let shifted = match kind {
                ShiftKind::LogicalLeft => {
                    if i >= shift {
                        current[i - shift]
                    } else {
                        zero
                    }
                }
                ShiftKind::LogicalRight | ShiftKind::ArithmeticRight => {
                    if i + shift < width {
                        current[i + shift]
                    } else {
                        fill
                    }
                }
            };
            next.push(mux2(n, sel, current[i], shifted));
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_bits, to_bits};

    fn build(width: usize, kind: ShiftKind) -> Netlist {
        let mut n = Netlist::new();
        let a: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let stages = width.trailing_zeros() as usize;
        let amt: Vec<NodeId> = (0..stages).map(|i| n.add_input(format!("sh{i}"))).collect();
        let out = barrel_shifter(&mut n, &a, &amt, kind);
        for (i, bit) in out.iter().enumerate() {
            n.mark_output(*bit, format!("o{i}"));
        }
        n
    }

    fn run(n: &Netlist, width: usize, a: u64, sh: u64) -> u64 {
        let stages = width.trailing_zeros() as usize;
        let mut inputs = to_bits(a, width);
        inputs.extend(to_bits(sh, stages));
        from_bits(&n.evaluate(&inputs))
    }

    #[test]
    fn logical_left() {
        let n = build(16, ShiftKind::LogicalLeft);
        for sh in 0..16u64 {
            assert_eq!(
                run(&n, 16, 0xABCD, sh),
                (0xABCDu64 << sh) & 0xFFFF,
                "shift {sh}"
            );
        }
    }

    #[test]
    fn logical_right() {
        let n = build(16, ShiftKind::LogicalRight);
        for sh in 0..16u64 {
            assert_eq!(run(&n, 16, 0xABCD, sh), 0xABCDu64 >> sh, "shift {sh}");
        }
    }

    #[test]
    fn arithmetic_right_negative() {
        let n = build(8, ShiftKind::ArithmeticRight);
        // 0xF0 = -16 as i8; arithmetic shifts keep the sign bits set.
        for sh in 0..8u64 {
            let expect = ((0xF0u8 as i8) >> sh) as u8 as u64;
            assert_eq!(run(&n, 8, 0xF0, sh), expect, "shift {sh}");
        }
    }

    #[test]
    fn arithmetic_right_positive_matches_logical() {
        let na = build(8, ShiftKind::ArithmeticRight);
        let nl = build(8, ShiftKind::LogicalRight);
        for sh in 0..8u64 {
            assert_eq!(run(&na, 8, 0x35, sh), run(&nl, 8, 0x35, sh));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_width_panics() {
        let mut n = Netlist::new();
        let a: Vec<NodeId> = (0..6).map(|i| n.add_input(format!("a{i}"))).collect();
        let amt = vec![n.add_input("sh0")];
        barrel_shifter(&mut n, &a, &amt, ShiftKind::LogicalLeft);
    }
}
