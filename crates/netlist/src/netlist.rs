//! The [`Netlist`] graph: a flat, topologically ordered list of primitive
//! gates with named primary outputs.

use crate::gate::{Gate, GateKind};
use std::fmt;

/// Index of a gate (equivalently, of the net it drives) inside a [`Netlist`].
///
/// Node ids are only meaningful for the netlist that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a registered primary output (an *endpoint* for timing analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OutputId(pub(crate) u32);

impl OutputId {
    /// Raw index of the output.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A registered primary output of the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// The node driving this output.
    pub node: NodeId,
    /// Human-readable label, e.g. `"result[7]"`.
    pub label: String,
}

/// A combinational gate-level netlist kept in topological order.
///
/// Gates can only reference previously inserted gates, so the insertion
/// order is a valid evaluation/traversal order.  This makes functional
/// evaluation and timing analysis a single linear pass.
///
/// # Example
///
/// ```
/// use sfi_netlist::Netlist;
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let sum = n.xor2(a, b);
/// let carry = n.and2(a, b);
/// n.mark_output(sum, "sum");
/// n.mark_output(carry, "carry");
///
/// let values = n.evaluate(&[true, true]);
/// assert_eq!(values, vec![false, true]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<NodeId>,
    input_labels: Vec<String>,
    outputs: Vec<Output>,
    fanout: Vec<u32>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gates (including inputs and constants).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the netlist contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of registered primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The primary inputs in registration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The label of primary input `i` (registration order).
    pub fn input_label(&self, i: usize) -> &str {
        &self.input_labels[i]
    }

    /// The registered primary outputs.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// The gate at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this netlist.
    pub fn gate(&self, node: NodeId) -> Gate {
        self.gates[node.index()]
    }

    /// The node id of the `index`-th gate in topological order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn node(&self, index: usize) -> NodeId {
        assert!(
            index < self.gates.len(),
            "node index {index} out of range (len {})",
            self.gates.len()
        );
        NodeId(index as u32)
    }

    /// All gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates driven by `node`.
    pub fn fanout(&self, node: NodeId) -> usize {
        self.fanout[node.index()] as usize
    }

    /// Adds a primary input and returns its node.
    pub fn add_input(&mut self, label: impl Into<String>) -> NodeId {
        let id = self.push(Gate::source(GateKind::Input));
        self.inputs.push(id);
        self.input_labels.push(label.into());
        id
    }

    /// Adds (or reuses nothing; always adds) a constant-valued node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Gate::source(GateKind::Const(value)))
    }

    /// Registers `node` as a primary output with the given label and returns
    /// its output id.
    pub fn mark_output(&mut self, node: NodeId, label: impl Into<String>) -> OutputId {
        self.check(node);
        let id = OutputId(self.outputs.len() as u32);
        self.outputs.push(Output {
            node,
            label: label.into(),
        });
        id
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        let id = NodeId(self.gates.len() as u32);
        if gate.kind.fanin_count() >= 1 {
            self.fanout[gate.a as usize] += 1;
        }
        if gate.kind.fanin_count() == 2 {
            self.fanout[gate.b as usize] += 1;
        }
        self.gates.push(gate);
        self.fanout.push(0);
        id
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.index() < self.gates.len(),
            "node {node} does not belong to this netlist (len {})",
            self.gates.len()
        );
    }

    /// Adds a buffer driven by `a`.
    pub fn buf(&mut self, a: NodeId) -> NodeId {
        self.check(a);
        self.push(Gate::unary(GateKind::Buf, a.0))
    }

    /// Adds an inverter driven by `a`.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.check(a);
        self.push(Gate::unary(GateKind::Not, a.0))
    }

    /// Adds a two-input AND gate.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.check(a);
        self.check(b);
        self.push(Gate::binary(GateKind::And2, a.0, b.0))
    }

    /// Adds a two-input NAND gate.
    pub fn nand2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.check(a);
        self.check(b);
        self.push(Gate::binary(GateKind::Nand2, a.0, b.0))
    }

    /// Adds a two-input OR gate.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.check(a);
        self.check(b);
        self.push(Gate::binary(GateKind::Or2, a.0, b.0))
    }

    /// Adds a two-input NOR gate.
    pub fn nor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.check(a);
        self.check(b);
        self.push(Gate::binary(GateKind::Nor2, a.0, b.0))
    }

    /// Adds a two-input XOR gate.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.check(a);
        self.check(b);
        self.push(Gate::binary(GateKind::Xor2, a.0, b.0))
    }

    /// Adds a two-input XNOR gate.
    pub fn xnor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.check(a);
        self.check(b);
        self.push(Gate::binary(GateKind::Xnor2, a.0, b.0))
    }

    /// Evaluates the netlist for the given primary-input assignment and
    /// returns the value of every registered output, in output order.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from [`Netlist::input_count`].
    pub fn evaluate(&self, input_values: &[bool]) -> Vec<bool> {
        let values = self.evaluate_all(input_values);
        self.outputs
            .iter()
            .map(|o| values[o.node.index()])
            .collect()
    }

    /// Evaluates the netlist and returns the value of **every** node, in
    /// topological order.  Useful for callers (such as dynamic timing
    /// analysis) that need internal values as well as outputs.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from [`Netlist::input_count`].
    pub fn evaluate_all(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "expected {} input values, got {}",
            self.inputs.len(),
            input_values.len()
        );
        let mut values = vec![false; self.gates.len()];
        let mut next_input = 0usize;
        for (i, gate) in self.gates.iter().enumerate() {
            values[i] = match gate.kind {
                GateKind::Input => {
                    let v = input_values[next_input];
                    next_input += 1;
                    v
                }
                GateKind::Const(v) => v,
                kind => {
                    let a = values[gate.a as usize];
                    let b = if kind.fanin_count() == 2 {
                        values[gate.b as usize]
                    } else {
                        false
                    };
                    kind.eval(a, b)
                }
            };
        }
        values
    }

    /// Returns the logic depth (number of gates on the longest input-to-node
    /// path) of every node.  Sources have depth zero.
    pub fn logic_depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            if gate.kind.is_source() {
                continue;
            }
            let da = depth[gate.a as usize];
            let db = if gate.kind.fanin_count() == 2 {
                depth[gate.b as usize]
            } else {
                0
            };
            depth[i] = da.max(db) + 1;
        }
        depth
    }

    /// The maximum logic depth over all registered outputs.
    pub fn max_output_depth(&self) -> u32 {
        let depths = self.logic_depths();
        self.outputs
            .iter()
            .map(|o| depths[o.node.index()])
            .max()
            .unwrap_or(0)
    }

    /// Counts gates per kind, useful for reporting netlist statistics.
    pub fn gate_histogram(&self) -> Vec<(GateKind, usize)> {
        let mut counts: Vec<(GateKind, usize)> = Vec::new();
        for gate in &self.gates {
            match counts.iter_mut().find(|(k, _)| *k == gate.kind) {
                Some((_, c)) => *c += 1,
                None => counts.push((gate.kind, 1)),
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.xor2(a, b);
        let c = n.and2(a, b);
        n.mark_output(s, "sum");
        n.mark_output(c, "carry");
        n
    }

    #[test]
    fn half_adder_truth_table() {
        let n = half_adder();
        assert_eq!(n.evaluate(&[false, false]), vec![false, false]);
        assert_eq!(n.evaluate(&[true, false]), vec![true, false]);
        assert_eq!(n.evaluate(&[false, true]), vec![true, false]);
        assert_eq!(n.evaluate(&[true, true]), vec![false, true]);
    }

    #[test]
    fn counts_and_labels() {
        let n = half_adder();
        assert_eq!(n.len(), 4);
        assert_eq!(n.input_count(), 2);
        assert_eq!(n.output_count(), 2);
        assert_eq!(n.input_label(0), "a");
        assert_eq!(n.outputs()[1].label, "carry");
        assert!(!n.is_empty());
    }

    #[test]
    fn fanout_tracking() {
        let n = half_adder();
        // a and b each drive the XOR and the AND.
        assert_eq!(n.fanout(n.inputs()[0]), 2);
        assert_eq!(n.fanout(n.inputs()[1]), 2);
        // the outputs drive nothing.
        let sum_node = n.outputs()[0].node;
        assert_eq!(n.fanout(sum_node), 0);
    }

    #[test]
    fn depths() {
        let n = half_adder();
        assert_eq!(n.max_output_depth(), 1);
        let mut n2 = Netlist::new();
        let a = n2.add_input("a");
        let b = n2.add_input("b");
        let x = n2.xor2(a, b);
        let y = n2.xor2(x, b);
        let z = n2.xor2(y, x);
        n2.mark_output(z, "z");
        assert_eq!(n2.max_output_depth(), 3);
    }

    #[test]
    fn constants_and_unary() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let one = n.constant(true);
        let na = n.not(a);
        let buf = n.buf(na);
        let o = n.and2(buf, one);
        n.mark_output(o, "o");
        assert_eq!(n.evaluate(&[false]), vec![true]);
        assert_eq!(n.evaluate(&[true]), vec![false]);
    }

    #[test]
    fn evaluate_all_returns_every_node() {
        let n = half_adder();
        let all = n.evaluate_all(&[true, true]);
        assert_eq!(all.len(), n.len());
        assert!(!all[2]); // xor
        assert!(all[3]); // and
    }

    #[test]
    fn gate_histogram_counts() {
        let n = half_adder();
        let hist = n.gate_histogram();
        let inputs = hist.iter().find(|(k, _)| *k == GateKind::Input).unwrap().1;
        assert_eq!(inputs, 2);
    }

    #[test]
    #[should_panic(expected = "expected 2 input values")]
    fn evaluate_wrong_input_count_panics() {
        let n = half_adder();
        n.evaluate(&[true]);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_node_panics() {
        let mut n = Netlist::new();
        let _a = n.add_input("a");
        let mut other = Netlist::new();
        let _b = other.add_input("b");
        let bogus = NodeId(57);
        n.not(bogus);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(NodeId(4).index(), 4);
        assert_eq!(OutputId(2).index(), 2);
    }

    #[test]
    fn node_by_index_roundtrips() {
        let n = half_adder();
        for i in 0..n.len() {
            assert_eq!(n.node(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_by_index_out_of_range_panics() {
        let n = half_adder();
        n.node(n.len());
    }
}
