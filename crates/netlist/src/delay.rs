//! Gate delay model and delay-vs-supply-voltage scaling.
//!
//! The delays are loosely modelled on a 28 nm standard-cell library.  The
//! absolute values are not meaningful on their own — the characterization
//! flow in `sfi-core` calibrates a global scale factor so that the static
//! timing limit of the ALU datapath matches the paper's 707 MHz @ 0.7 V —
//! but the *relative* delays between gate kinds and the voltage behaviour
//! shape the per-instruction, per-bit statistics the paper relies on.

use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

/// Delay-vs-Vdd scaling based on the alpha-power law,
/// `delay ∝ Vdd / (Vdd - Vth)^alpha`.
///
/// The paper extracts this relation from foundry libraries characterized at
/// five supply voltages (0.6 V to 1.0 V); we generate the same five-point
/// curve analytically (see `sfi-timing::VddDelayCurve`) from this model.
///
/// # Example
///
/// ```
/// use sfi_netlist::VoltageScaling;
///
/// let scaling = VoltageScaling::default_28nm();
/// // Higher supply voltage means faster gates.
/// assert!(scaling.delay_factor(0.8) < scaling.delay_factor(0.7));
/// // The factor is normalized to 1.0 at the nominal voltage.
/// assert!((scaling.delay_factor(scaling.nominal_vdd()) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageScaling {
    vth: f64,
    alpha: f64,
    nominal_vdd: f64,
}

impl VoltageScaling {
    /// Creates a scaling model with the given threshold voltage, velocity
    /// saturation exponent and nominal supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_vdd <= vth` or any argument is non-positive.
    pub fn new(vth: f64, alpha: f64, nominal_vdd: f64) -> Self {
        assert!(
            vth > 0.0 && alpha > 0.0 && nominal_vdd > vth,
            "invalid voltage scaling parameters"
        );
        VoltageScaling {
            vth,
            alpha,
            nominal_vdd,
        }
    }

    /// Parameters representative of a 28 nm low-Vth process at 0.7 V nominal
    /// supply, matching the paper's operating point.
    pub fn default_28nm() -> Self {
        VoltageScaling::new(0.32, 1.4, 0.7)
    }

    /// The nominal supply voltage the factors are normalized to.
    pub fn nominal_vdd(&self) -> f64 {
        self.nominal_vdd
    }

    /// The threshold voltage of the model.
    pub fn vth(&self) -> f64 {
        self.vth
    }

    /// Relative delay factor at supply voltage `vdd`, normalized so that the
    /// factor at the nominal voltage is exactly 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not above the threshold voltage (the circuit would
    /// not switch at all).
    pub fn delay_factor(&self, vdd: f64) -> f64 {
        assert!(
            vdd > self.vth,
            "supply voltage {vdd} V is not above the threshold voltage {} V",
            self.vth
        );
        let raw = |v: f64| v / (v - self.vth).powf(self.alpha);
        raw(vdd) / raw(self.nominal_vdd)
    }
}

impl Default for VoltageScaling {
    fn default() -> Self {
        Self::default_28nm()
    }
}

/// Per-gate propagation delays (in picoseconds) with fanout loading and a
/// global calibration scale.
///
/// The total delay of a gate instance is
/// `(intrinsic(kind) + load_per_fanout * max(fanout - 1, 0)) * scale`,
/// optionally multiplied by a voltage factor from [`VoltageScaling`].
///
/// # Example
///
/// ```
/// use sfi_netlist::{DelayModel, gate::GateKind};
///
/// let model = DelayModel::default_28nm();
/// // XOR cells are slower than NAND cells in any sane library.
/// assert!(model.intrinsic(GateKind::Xor2) > model.intrinsic(GateKind::Nand2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    scale: f64,
    load_per_fanout_ps: f64,
    clk_to_q_ps: f64,
    setup_ps: f64,
    intrinsic_ps: [f64; 10],
}

impl DelayModel {
    /// Creates the default 28 nm-like delay model (scale = 1.0).
    pub fn default_28nm() -> Self {
        let mut intrinsic_ps = [0.0; 10];
        intrinsic_ps[Self::kind_index(GateKind::Input)] = 0.0;
        intrinsic_ps[Self::kind_index(GateKind::Const(false))] = 0.0;
        intrinsic_ps[Self::kind_index(GateKind::Buf)] = 14.0;
        intrinsic_ps[Self::kind_index(GateKind::Not)] = 9.0;
        intrinsic_ps[Self::kind_index(GateKind::And2)] = 18.0;
        intrinsic_ps[Self::kind_index(GateKind::Nand2)] = 12.0;
        intrinsic_ps[Self::kind_index(GateKind::Or2)] = 19.0;
        intrinsic_ps[Self::kind_index(GateKind::Nor2)] = 14.0;
        intrinsic_ps[Self::kind_index(GateKind::Xor2)] = 26.0;
        intrinsic_ps[Self::kind_index(GateKind::Xnor2)] = 26.0;
        DelayModel {
            scale: 1.0,
            load_per_fanout_ps: 3.0,
            clk_to_q_ps: 55.0,
            setup_ps: 35.0,
            intrinsic_ps,
        }
    }

    fn kind_index(kind: GateKind) -> usize {
        match kind {
            GateKind::Input => 0,
            GateKind::Const(false) => 1,
            GateKind::Const(true) => 1,
            GateKind::Buf => 2,
            GateKind::Not => 3,
            GateKind::And2 => 4,
            GateKind::Nand2 => 5,
            GateKind::Or2 => 6,
            GateKind::Nor2 => 7,
            GateKind::Xor2 => 8,
            GateKind::Xnor2 => 9,
        }
    }

    /// Intrinsic (unloaded, unscaled) delay of a gate kind in picoseconds.
    pub fn intrinsic(&self, kind: GateKind) -> f64 {
        self.intrinsic_ps[Self::kind_index(kind)]
    }

    /// The global calibration scale applied to all combinational delays.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Returns a copy of the model with the given global scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn with_scale(&self, scale: f64) -> Self {
        assert!(scale > 0.0, "delay scale must be positive, got {scale}");
        DelayModel {
            scale,
            ..self.clone()
        }
    }

    /// Flip-flop clock-to-output delay in picoseconds (scaled).
    pub fn clk_to_q(&self) -> f64 {
        self.clk_to_q_ps * self.scale
    }

    /// Flip-flop setup time in picoseconds (scaled).
    pub fn setup(&self) -> f64 {
        self.setup_ps * self.scale
    }

    /// Sequential overhead (clock-to-q plus setup) added to every
    /// register-to-register path, in picoseconds.
    pub fn sequential_overhead(&self) -> f64 {
        self.clk_to_q() + self.setup()
    }

    /// Delay in picoseconds of one gate instance inside `netlist`,
    /// accounting for fanout loading and the calibration scale.
    pub fn gate_delay(&self, netlist: &Netlist, node: NodeId) -> f64 {
        let gate = netlist.gate(node);
        let fanout = netlist.fanout(node);
        let load = self.load_per_fanout_ps * fanout.saturating_sub(1) as f64;
        (self.intrinsic(gate.kind) + load) * self.scale
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::default_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_scaling_monotonic() {
        let s = VoltageScaling::default_28nm();
        let mut prev = f64::INFINITY;
        for v in [0.6, 0.7, 0.8, 0.9, 1.0] {
            let f = s.delay_factor(v);
            assert!(f < prev, "delay factor must decrease with increasing Vdd");
            prev = f;
        }
    }

    #[test]
    fn voltage_scaling_normalized_at_nominal() {
        let s = VoltageScaling::new(0.3, 1.3, 0.7);
        assert!((s.delay_factor(0.7) - 1.0).abs() < 1e-12);
        assert_eq!(s.nominal_vdd(), 0.7);
        assert_eq!(s.vth(), 0.3);
    }

    #[test]
    #[should_panic(expected = "not above the threshold")]
    fn voltage_below_threshold_panics() {
        VoltageScaling::default_28nm().delay_factor(0.2);
    }

    #[test]
    #[should_panic(expected = "invalid voltage scaling")]
    fn invalid_parameters_panic() {
        VoltageScaling::new(0.5, 1.3, 0.4);
    }

    #[test]
    fn delay_model_relative_order() {
        let m = DelayModel::default_28nm();
        assert!(m.intrinsic(GateKind::Not) < m.intrinsic(GateKind::Nand2));
        assert!(m.intrinsic(GateKind::Nand2) < m.intrinsic(GateKind::And2));
        assert!(m.intrinsic(GateKind::And2) < m.intrinsic(GateKind::Xor2));
        assert_eq!(m.intrinsic(GateKind::Input), 0.0);
        assert_eq!(m.intrinsic(GateKind::Const(true)), 0.0);
    }

    #[test]
    fn scale_applies_everywhere() {
        let m = DelayModel::default_28nm();
        let m2 = m.with_scale(2.0);
        assert_eq!(m2.scale(), 2.0);
        assert!((m2.clk_to_q() - 2.0 * m.clk_to_q()).abs() < 1e-12);
        assert!((m2.setup() - 2.0 * m.setup()).abs() < 1e-12);
        assert!((m2.sequential_overhead() - 2.0 * m.sequential_overhead()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_scale_panics() {
        DelayModel::default_28nm().with_scale(0.0);
    }

    #[test]
    fn fanout_loading_increases_delay() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.and2(a, b);
        // Give x three fanouts.
        let _ = n.not(x);
        let _ = n.not(x);
        let _ = n.not(x);
        let y = n.and2(a, b); // zero fanout
        let m = DelayModel::default_28nm();
        assert!(m.gate_delay(&n, x) > m.gate_delay(&n, y));
    }
}
