//! Primitive gate types.
//!
//! The netlist is restricted to one- and two-input primitive cells.  Larger
//! structures (multiplexers, full adders, …) are decomposed into these
//! primitives by the [`crate::builder`] helpers so that value-dependent
//! timing analysis only ever has to reason about controlling values of
//! simple gates.

use std::fmt;

/// The logic function computed by a [`Gate`].
///
/// `Input` and `Const` gates have no fanins; `Buf` and `Not` have one; all
/// remaining kinds have exactly two.
///
/// # Example
///
/// ```
/// use sfi_netlist::gate::GateKind;
///
/// assert_eq!(GateKind::And2.eval(true, false), false);
/// assert_eq!(GateKind::Xor2.eval(true, false), true);
/// assert_eq!(GateKind::And2.fanin_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input of the netlist (value provided externally).
    Input,
    /// Constant logic value.
    Const(bool),
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input NAND.
    Nand2,
    /// Two-input OR.
    Or2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
}

impl GateKind {
    /// Number of fanin nets this gate kind consumes (0, 1 or 2).
    pub fn fanin_count(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const(_) => 0,
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    /// Evaluates the gate function for the given input values.
    ///
    /// For gates with fewer than two fanins the extra argument is ignored.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateKind::Input => a,
            GateKind::Const(v) => v,
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And2 => a & b,
            GateKind::Nand2 => !(a & b),
            GateKind::Or2 => a | b,
            GateKind::Nor2 => !(a | b),
            GateKind::Xor2 => a ^ b,
            GateKind::Xnor2 => !(a ^ b),
        }
    }

    /// Returns the *controlling value* of the gate, i.e. the input value
    /// that determines the output regardless of the other input, if one
    /// exists.
    ///
    /// This is the property exploited by dynamic timing analysis: if a
    /// controlling value arrives early the output settles early, shortening
    /// the sensitised path.
    ///
    /// ```
    /// use sfi_netlist::gate::GateKind;
    ///
    /// assert_eq!(GateKind::And2.controlling_value(), Some(false));
    /// assert_eq!(GateKind::Or2.controlling_value(), Some(true));
    /// assert_eq!(GateKind::Xor2.controlling_value(), None);
    /// ```
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And2 | GateKind::Nand2 => Some(false),
            GateKind::Or2 | GateKind::Nor2 => Some(true),
            _ => None,
        }
    }

    /// Whether this kind represents a primary input or constant (no fanin).
    pub fn is_source(self) -> bool {
        self.fanin_count() == 0
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "input",
            GateKind::Const(false) => "const0",
            GateKind::Const(true) => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And2 => "and2",
            GateKind::Nand2 => "nand2",
            GateKind::Or2 => "or2",
            GateKind::Nor2 => "nor2",
            GateKind::Xor2 => "xor2",
            GateKind::Xnor2 => "xnor2",
        };
        f.write_str(s)
    }
}

/// A single instantiated gate inside a [`crate::Netlist`].
///
/// Fanins are stored as indices of previously inserted gates, which keeps
/// the netlist in topological order by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// The logic function of the gate.
    pub kind: GateKind,
    /// First fanin (unused for sources).
    pub a: u32,
    /// Second fanin (unused for sources and single-input gates).
    pub b: u32,
}

impl Gate {
    /// Sentinel fanin index used for unconnected fanin slots.
    pub const NO_FANIN: u32 = u32::MAX;

    /// Creates a source gate (input or constant).
    pub fn source(kind: GateKind) -> Self {
        debug_assert!(kind.is_source());
        Gate {
            kind,
            a: Self::NO_FANIN,
            b: Self::NO_FANIN,
        }
    }

    /// Creates a single-input gate.
    pub fn unary(kind: GateKind, a: u32) -> Self {
        debug_assert_eq!(kind.fanin_count(), 1);
        Gate {
            kind,
            a,
            b: Self::NO_FANIN,
        }
    }

    /// Creates a two-input gate.
    pub fn binary(kind: GateKind, a: u32, b: u32) -> Self {
        debug_assert_eq!(kind.fanin_count(), 2);
        Gate { kind, a, b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_truth_tables() {
        let cases = [
            (GateKind::And2, [false, false, false, true]),
            (GateKind::Nand2, [true, true, true, false]),
            (GateKind::Or2, [false, true, true, true]),
            (GateKind::Nor2, [true, false, false, false]),
            (GateKind::Xor2, [false, true, true, false]),
            (GateKind::Xnor2, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval(a, b), e, "{kind} a={a} b={b}");
            }
        }
    }

    #[test]
    fn unary_and_source_eval() {
        assert!(!GateKind::Not.eval(true, false));
        assert!(GateKind::Not.eval(false, true));
        assert!(GateKind::Buf.eval(true, false));
        assert!(GateKind::Const(true).eval(false, false));
        assert!(!GateKind::Const(false).eval(true, true));
        assert!(GateKind::Input.eval(true, false));
    }

    #[test]
    fn fanin_counts() {
        assert_eq!(GateKind::Input.fanin_count(), 0);
        assert_eq!(GateKind::Const(true).fanin_count(), 0);
        assert_eq!(GateKind::Not.fanin_count(), 1);
        assert_eq!(GateKind::Buf.fanin_count(), 1);
        assert_eq!(GateKind::Xnor2.fanin_count(), 2);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And2.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand2.controlling_value(), Some(false));
        assert_eq!(GateKind::Or2.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor2.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor2.controlling_value(), None);
        assert_eq!(GateKind::Xnor2.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(GateKind::And2.to_string(), "and2");
        assert_eq!(GateKind::Const(true).to_string(), "const1");
        assert_eq!(GateKind::Const(false).to_string(), "const0");
    }

    #[test]
    fn gate_constructors() {
        let s = Gate::source(GateKind::Input);
        assert_eq!(s.a, Gate::NO_FANIN);
        let u = Gate::unary(GateKind::Not, 3);
        assert_eq!(u.a, 3);
        assert_eq!(u.b, Gate::NO_FANIN);
        let b = Gate::binary(GateKind::Xor2, 1, 2);
        assert_eq!((b.a, b.b), (1, 2));
    }
}
