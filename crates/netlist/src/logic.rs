//! Bitwise logic unit builder (AND / OR / XOR word operations).

use crate::netlist::{Netlist, NodeId};

/// Word-wide bitwise AND.
///
/// # Panics
///
/// Panics if operand widths differ.
pub fn and_word(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len(), "logic operands must have equal width");
    a.iter().zip(b).map(|(&x, &y)| n.and2(x, y)).collect()
}

/// Word-wide bitwise OR.
///
/// # Panics
///
/// Panics if operand widths differ.
pub fn or_word(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len(), "logic operands must have equal width");
    a.iter().zip(b).map(|(&x, &y)| n.or2(x, y)).collect()
}

/// Word-wide bitwise XOR.
///
/// # Panics
///
/// Panics if operand widths differ.
pub fn xor_word(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len(), "logic operands must have equal width");
    a.iter().zip(b).map(|(&x, &y)| n.xor2(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_bits, to_bits};

    fn build<F>(width: usize, f: F) -> Netlist
    where
        F: Fn(&mut Netlist, &[NodeId], &[NodeId]) -> Vec<NodeId>,
    {
        let mut n = Netlist::new();
        let a: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let out = f(&mut n, &a, &b);
        for (i, bit) in out.iter().enumerate() {
            n.mark_output(*bit, format!("o{i}"));
        }
        n
    }

    fn run(n: &Netlist, width: usize, a: u64, b: u64) -> u64 {
        let mut inputs = to_bits(a, width);
        inputs.extend(to_bits(b, width));
        from_bits(&n.evaluate(&inputs))
    }

    #[test]
    fn word_operations() {
        let wa = build(8, and_word);
        let wo = build(8, or_word);
        let wx = build(8, xor_word);
        for (a, b) in [(0xF0u64, 0x3Cu64), (0, 0xFF), (0xAA, 0x55), (0x12, 0x34)] {
            assert_eq!(run(&wa, 8, a, b), a & b);
            assert_eq!(run(&wo, 8, a, b), a | b);
            assert_eq!(run(&wx, 8, a, b), a ^ b);
        }
    }

    #[test]
    fn logic_depth_is_one() {
        let n = build(8, xor_word);
        assert_eq!(n.max_output_depth(), 1);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_widths_panic() {
        let mut n = Netlist::new();
        let a = vec![n.add_input("a0")];
        let b = vec![n.add_input("b0"), n.add_input("b1")];
        and_word(&mut n, &a, &b);
    }
}
