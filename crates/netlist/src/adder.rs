//! Adder/subtractor datapath builders.
//!
//! The execution-stage adder of the modelled core is a ripple-carry
//! adder: its per-bit carry chain produces exactly the bit-significance
//! ordering of timing failures that the paper observes ("bits with higher
//! significance tend to fail earlier"), because arrival times grow with bit
//! position.  A carry-select variant is also provided for ablation studies
//! on the influence of adder architecture on the dynamic-slack statistics.

use crate::builder::{full_adder, mux2};
use crate::netlist::{Netlist, NodeId};

/// Result of instantiating an adder: per-bit sums plus the carry out.
#[derive(Debug, Clone)]
pub struct AdderOutputs {
    /// Sum bits, little-endian.
    pub sum: Vec<NodeId>,
    /// Carry out of the most significant bit.
    pub carry_out: NodeId,
}

/// Instantiates a ripple-carry adder over the `width`-bit operands `a` and
/// `b` with carry input `cin`.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn ripple_carry_adder(
    n: &mut Netlist,
    a: &[NodeId],
    b: &[NodeId],
    cin: NodeId,
) -> AdderOutputs {
    assert!(!a.is_empty(), "adder width must be non-zero");
    assert_eq!(a.len(), b.len(), "adder operands must have equal width");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&ai, &bi) in a.iter().zip(b) {
        let (s, c) = full_adder(n, ai, bi, carry);
        sum.push(s);
        carry = c;
    }
    AdderOutputs {
        sum,
        carry_out: carry,
    }
}

/// Instantiates an adder/subtractor: when `sub` is high, `b` is inverted and
/// the carry-in forced high, computing `a - b` in two's complement.
///
/// The carry structure is a carry-select adder with four-bit blocks, which
/// is representative of the fast adders a synthesis tool maps the
/// execution-stage add onto: shallow enough that its typical (sensitised)
/// delay sits close to its worst case, yet still showing the per-block
/// bit-significance ordering of arrival times the paper observes.
///
/// Returns the per-bit result and the carry out (which equals "no borrow"
/// for subtraction).
pub fn add_sub(n: &mut Netlist, a: &[NodeId], b: &[NodeId], sub: NodeId) -> AdderOutputs {
    assert_eq!(a.len(), b.len(), "add_sub operands must have equal width");
    let b_xor: Vec<NodeId> = b.iter().map(|&bi| n.xor2(bi, sub)).collect();
    carry_select_adder(n, a, &b_xor, sub, 4)
}

/// Ripple-carry variant of [`add_sub`], retained for ablation studies on the
/// influence of the adder architecture on the dynamic-slack statistics.
pub fn add_sub_ripple(n: &mut Netlist, a: &[NodeId], b: &[NodeId], sub: NodeId) -> AdderOutputs {
    assert_eq!(a.len(), b.len(), "add_sub operands must have equal width");
    let b_xor: Vec<NodeId> = b.iter().map(|&bi| n.xor2(bi, sub)).collect();
    ripple_carry_adder(n, a, &b_xor, sub)
}

/// Instantiates a carry-select adder built from ripple blocks of
/// `block_width` bits.  Used by ablation benches to study how a flatter
/// arrival-time profile changes the extracted CDFs.
///
/// # Panics
///
/// Panics if `block_width` is zero or operand widths differ.
pub fn carry_select_adder(
    n: &mut Netlist,
    a: &[NodeId],
    b: &[NodeId],
    cin: NodeId,
    block_width: usize,
) -> AdderOutputs {
    assert!(block_width > 0, "block width must be non-zero");
    assert_eq!(a.len(), b.len(), "adder operands must have equal width");
    let zero = n.constant(false);
    let one = n.constant(true);
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    let mut start = 0usize;
    while start < a.len() {
        let end = (start + block_width).min(a.len());
        let ab = &a[start..end];
        let bb = &b[start..end];
        if start == 0 {
            let out = ripple_carry_adder(n, ab, bb, carry);
            sum.extend_from_slice(&out.sum);
            carry = out.carry_out;
        } else {
            // Speculatively compute the block for carry-in 0 and 1, then
            // select with the actual incoming carry.
            let out0 = ripple_carry_adder(n, ab, bb, zero);
            let out1 = ripple_carry_adder(n, ab, bb, one);
            for (s0, s1) in out0.sum.iter().zip(&out1.sum) {
                sum.push(mux2(n, carry, *s0, *s1));
            }
            carry = mux2(n, carry, out0.carry_out, out1.carry_out);
        }
        start = end;
    }
    AdderOutputs {
        sum,
        carry_out: carry,
    }
}

/// Instantiates a Kogge–Stone parallel-prefix adder.
///
/// The prefix structure has logarithmic depth and very little data
/// dependence in its arrival times, which is representative of the fast
/// carry-propagate adders a synthesis tool infers on timing-critical paths
/// (e.g. the final adder of the single-cycle multiplier).
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn kogge_stone_adder(n: &mut Netlist, a: &[NodeId], b: &[NodeId], cin: NodeId) -> AdderOutputs {
    assert!(!a.is_empty(), "adder width must be non-zero");
    assert_eq!(a.len(), b.len(), "adder operands must have equal width");
    let width = a.len();

    // Bit-wise generate / propagate.
    let mut g: Vec<NodeId> = a.iter().zip(b).map(|(&x, &y)| n.and2(x, y)).collect();
    let mut p: Vec<NodeId> = a.iter().zip(b).map(|(&x, &y)| n.xor2(x, y)).collect();
    let p_initial = p.clone();

    // Treat the carry-in as the generate of a virtual bit -1 by folding it
    // into bit 0: g0' = g0 | (p0 & cin).
    let p0_and_cin = n.and2(p[0], cin);
    g[0] = n.or2(g[0], p0_and_cin);

    // Prefix combination: (G, P) ∘ (G', P') = (G | (P & G'), P & P').
    let mut dist = 1usize;
    while dist < width {
        let prev_g = g.clone();
        let prev_p = p.clone();
        for i in (dist..width).rev() {
            let t = n.and2(prev_p[i], prev_g[i - dist]);
            g[i] = n.or2(prev_g[i], t);
            p[i] = n.and2(prev_p[i], prev_p[i - dist]);
        }
        dist *= 2;
    }

    // sum[i] = p_initial[i] ^ carry_into_i, carry_into_0 = cin,
    // carry_into_i = G[i-1] (which already folds in cin).
    let mut sum = Vec::with_capacity(width);
    sum.push(n.xor2(p_initial[0], cin));
    for i in 1..width {
        sum.push(n.xor2(p_initial[i], g[i - 1]));
    }
    AdderOutputs {
        sum,
        carry_out: g[width - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_bits, to_bits};

    #[derive(Clone, Copy)]
    enum Arch {
        Ripple,
        CarrySelect,
        KoggeStone,
    }

    fn build_adder_arch(width: usize, arch: Arch) -> (Netlist, usize) {
        let mut n = Netlist::new();
        let a: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let cin = n.add_input("cin");
        let out = match arch {
            Arch::Ripple => ripple_carry_adder(&mut n, &a, &b, cin),
            Arch::CarrySelect => carry_select_adder(&mut n, &a, &b, cin, 4),
            Arch::KoggeStone => kogge_stone_adder(&mut n, &a, &b, cin),
        };
        for (i, s) in out.sum.iter().enumerate() {
            n.mark_output(*s, format!("s{i}"));
        }
        n.mark_output(out.carry_out, "cout");
        (n, width)
    }

    fn build_adder(width: usize, select: bool) -> (Netlist, usize) {
        build_adder_arch(
            width,
            if select {
                Arch::CarrySelect
            } else {
                Arch::Ripple
            },
        )
    }

    fn run_add(n: &Netlist, width: usize, a: u64, b: u64, cin: bool) -> (u64, bool) {
        let mut inputs = to_bits(a, width);
        inputs.extend(to_bits(b, width));
        inputs.push(cin);
        let out = n.evaluate(&inputs);
        (from_bits(&out[..width]), out[width])
    }

    #[test]
    fn ripple_adder_small_exhaustive() {
        let (n, w) = build_adder(4, false);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    let (sum, cout) = run_add(&n, w, a, b, cin);
                    let expect = a + b + cin as u64;
                    assert_eq!(sum, expect & 0xF);
                    assert_eq!(cout, expect > 0xF);
                }
            }
        }
    }

    #[test]
    fn kogge_stone_small_exhaustive() {
        let (n, w) = build_adder_arch(4, Arch::KoggeStone);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    let (sum, cout) = run_add(&n, w, a, b, cin);
                    let expect = a + b + cin as u64;
                    assert_eq!(sum, expect & 0xF, "a={a} b={b} cin={cin}");
                    assert_eq!(cout, expect > 0xF, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn kogge_stone_matches_ripple_16bit() {
        let (nr, w) = build_adder_arch(16, Arch::Ripple);
        let (nk, _) = build_adder_arch(16, Arch::KoggeStone);
        for (a, b) in [
            (0u64, 0u64),
            (0xFFFF, 1),
            (0xAAAA, 0x5555),
            (54321, 12345),
            (40000, 39999),
        ] {
            for cin in [false, true] {
                assert_eq!(run_add(&nr, w, a, b, cin), run_add(&nk, w, a, b, cin));
            }
        }
    }

    #[test]
    fn kogge_stone_is_shallower_than_ripple() {
        let (nr, _) = build_adder_arch(32, Arch::Ripple);
        let (nk, _) = build_adder_arch(32, Arch::KoggeStone);
        assert!(nk.max_output_depth() < nr.max_output_depth());
    }

    #[test]
    fn carry_select_matches_ripple() {
        let (nr, w) = build_adder(8, false);
        let (ns, _) = build_adder(8, true);
        for (a, b) in [(0u64, 0u64), (255, 1), (170, 85), (200, 100), (37, 219)] {
            assert_eq!(run_add(&nr, w, a, b, false), run_add(&ns, w, a, b, false));
            assert_eq!(run_add(&nr, w, a, b, true), run_add(&ns, w, a, b, true));
        }
    }

    #[test]
    fn add_sub_subtracts() {
        for variant in [0, 1] {
            let width = 8;
            let mut n = Netlist::new();
            let a: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
            let b: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
            let sub = n.add_input("sub");
            let out = if variant == 0 {
                add_sub(&mut n, &a, &b, sub)
            } else {
                add_sub_ripple(&mut n, &a, &b, sub)
            };
            for (i, s) in out.sum.iter().enumerate() {
                n.mark_output(*s, format!("s{i}"));
            }
            for (a_val, b_val) in [(100u64, 58u64), (5, 200), (0, 0), (255, 255)] {
                let mut inputs = to_bits(a_val, width);
                inputs.extend(to_bits(b_val, width));
                inputs.push(true);
                let got = from_bits(&n.evaluate(&inputs)[..width]);
                assert_eq!(got, a_val.wrapping_sub(b_val) & 0xFF);
                let mut inputs = to_bits(a_val, width);
                inputs.extend(to_bits(b_val, width));
                inputs.push(false);
                let got = from_bits(&n.evaluate(&inputs)[..width]);
                assert_eq!(got, (a_val + b_val) & 0xFF);
            }
        }
    }

    #[test]
    fn ripple_depth_grows_with_significance() {
        let (n, w) = build_adder(16, false);
        let depths = n.logic_depths();
        let d_low = depths[n.outputs()[0].node.index()];
        let d_high = depths[n.outputs()[w - 1].node.index()];
        assert!(
            d_high > d_low,
            "msb depth {d_high} should exceed lsb depth {d_low}"
        );
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_widths_panic() {
        let mut n = Netlist::new();
        let a = vec![n.add_input("a0")];
        let b = vec![n.add_input("b0"), n.add_input("b1")];
        let cin = n.add_input("cin");
        ripple_carry_adder(&mut n, &a, &b, cin);
    }
}
