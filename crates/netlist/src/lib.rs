//! Gate-level netlist substrate for timing-error characterization.
//!
//! This crate provides the circuit-level foundation of the statistical
//! fault-injection flow described in *"Statistical Fault Injection for
//! Impact-Evaluation of Timing Errors on Application Performance"*
//! (DAC 2016).  The paper characterizes timing errors on the 32 ALU
//! endpoint flip-flops of the execution stage of an OpenRISC core by
//! analysing a placed & routed gate-level netlist.  Here we build a
//! structurally faithful, synthetic equivalent of that execution-stage
//! datapath out of primitive gates:
//!
//! * a [`Netlist`] graph of two-input primitive gates kept in topological
//!   order, cheap to evaluate and to traverse for timing analysis,
//! * a voltage-aware [`DelayModel`] assigning per-gate propagation delays
//!   (with fanout loading) and an alpha-power-law delay-vs-Vdd scaling,
//! * datapath builders for the blocks that make up the execution stage:
//!   ripple-carry and carry-select [`adder`]s, a Wallace-tree
//!   [`multiplier`], a logarithmic barrel [`shifter`], a bitwise
//!   [`logic`] unit, a flag [`comparator`], and the combined
//!   [`alu::AluDatapath`] whose 32 result bits are the fault-injection
//!   endpoints used throughout the rest of the workspace.
//!
//! Static and dynamic timing analysis on these netlists lives in the
//! `sfi-timing` crate; this crate is purely structural/functional.
//!
//! # Example
//!
//! ```
//! use sfi_netlist::alu::{AluDatapath, AluOp};
//!
//! // Build the 32-bit execution-stage datapath and evaluate an addition.
//! let alu = AluDatapath::build(32);
//! let inputs = alu.encode_inputs(AluOp::Add, 40, 2);
//! let result = alu.evaluate_result(&inputs);
//! assert_eq!(result, 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod alu;
pub mod builder;
pub mod comparator;
pub mod delay;
pub mod gate;
pub mod logic;
pub mod multiplier;
pub mod netlist;
pub mod shifter;

pub use delay::{DelayModel, VoltageScaling};
pub use gate::{Gate, GateKind};
pub use netlist::{Netlist, NodeId, OutputId};
