//! Comparison / set-flag unit builder.
//!
//! Produces the flag used by OpenRISC `l.sf*` instructions.  The comparator
//! reuses a subtractor so its arrival times resemble those of the adder,
//! which is why set-flag instructions in the paper fail in the same
//! frequency range as additions.

use crate::adder::add_sub;
use crate::builder::or_reduce;
use crate::netlist::{Netlist, NodeId};

/// Outputs of the comparator: individual relation flags.
#[derive(Debug, Clone)]
pub struct ComparatorOutputs {
    /// `a == b`.
    pub eq: NodeId,
    /// `a != b`.
    pub ne: NodeId,
    /// Unsigned `a < b`.
    pub ltu: NodeId,
    /// Unsigned `a >= b`.
    pub geu: NodeId,
    /// Signed `a < b`.
    pub lts: NodeId,
    /// Signed `a >= b`.
    pub ges: NodeId,
}

/// Instantiates a comparator computing equality and ordering flags for the
/// `width`-bit operands `a` and `b`.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn comparator(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> ComparatorOutputs {
    assert!(!a.is_empty(), "comparator width must be non-zero");
    assert_eq!(
        a.len(),
        b.len(),
        "comparator operands must have equal width"
    );
    let width = a.len();

    // a - b through the shared adder structure.
    let one = n.constant(true);
    let diff = add_sub(n, a, b, one);

    // Equality: OR-reduce the XOR of the operands, then invert.
    let xors: Vec<NodeId> = a.iter().zip(b).map(|(&x, &y)| n.xor2(x, y)).collect();
    let any_diff = or_reduce(n, &xors);
    let eq = n.not(any_diff);
    let ne = n.buf(any_diff);

    // Unsigned: borrow == !carry_out.
    let ltu = n.not(diff.carry_out);
    let geu = n.buf(diff.carry_out);

    // Signed: lt = (sign(a) ^ sign(b)) ? sign(a) : sign(diff)
    let sa = a[width - 1];
    let sb = b[width - 1];
    let sd = diff.sum[width - 1];
    let signs_differ = n.xor2(sa, sb);
    let lts = crate::builder::mux2(n, signs_differ, sd, sa);
    let ges = n.not(lts);

    ComparatorOutputs {
        eq,
        ne,
        ltu,
        geu,
        lts,
        ges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::to_bits;

    fn build(width: usize) -> Netlist {
        let mut n = Netlist::new();
        let a: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let c = comparator(&mut n, &a, &b);
        n.mark_output(c.eq, "eq");
        n.mark_output(c.ne, "ne");
        n.mark_output(c.ltu, "ltu");
        n.mark_output(c.geu, "geu");
        n.mark_output(c.lts, "lts");
        n.mark_output(c.ges, "ges");
        n
    }

    fn run(n: &Netlist, width: usize, a: u64, b: u64) -> Vec<bool> {
        let mut inputs = to_bits(a, width);
        inputs.extend(to_bits(b, width));
        n.evaluate(&inputs)
    }

    #[test]
    fn compare_4bit_exhaustive() {
        let n = build(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let flags = run(&n, 4, a, b);
                let (sa, sb) = (
                    a as i64 - if a >= 8 { 16 } else { 0 },
                    b as i64 - if b >= 8 { 16 } else { 0 },
                );
                assert_eq!(flags[0], a == b, "eq a={a} b={b}");
                assert_eq!(flags[1], a != b, "ne a={a} b={b}");
                assert_eq!(flags[2], a < b, "ltu a={a} b={b}");
                assert_eq!(flags[3], a >= b, "geu a={a} b={b}");
                assert_eq!(flags[4], sa < sb, "lts a={sa} b={sb}");
                assert_eq!(flags[5], sa >= sb, "ges a={sa} b={sb}");
            }
        }
    }

    #[test]
    fn compare_16bit_samples() {
        let n = build(16);
        let cases = [
            (0u64, 0u64),
            (65535, 0),
            (0, 65535),
            (32767, 32768), // signed boundary
            (40000, 40000),
            (12345, 54321),
        ];
        for (a, b) in cases {
            let flags = run(&n, 16, a, b);
            let sa = a as u16 as i16 as i64;
            let sb = b as u16 as i16 as i64;
            assert_eq!(flags[0], a == b);
            assert_eq!(flags[2], a < b);
            assert_eq!(flags[4], sa < sb);
        }
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_widths_panic() {
        let mut n = Netlist::new();
        let a = vec![n.add_input("a0")];
        let b = vec![n.add_input("b0"), n.add_input("b1")];
        comparator(&mut n, &a, &b);
    }
}
