//! Lightweight span tracing with Chrome trace-event export.
//!
//! A [`Span`] is an RAII guard: it stamps a monotonic start time at
//! construction and, when dropped, turns into a [`SpanRecord`] carrying
//! its duration, parent link and free-form args.  Records first land in a
//! small **per-thread buffer** (a plain `Vec` push, no locks), which is
//! drained into the bounded process-wide [`TraceStore`] when it fills,
//! when the thread exits, or when the instrumented layer calls
//! [`flush_thread`] at a coarse boundary (cell completion, worker exit,
//! build phase end).  The store evicts oldest-first and counts what it
//! dropped, exactly like the event ring.
//!
//! Besides spans the store holds [`CounterRecord`]s — sampled counter
//! series (per-worker utilization) that Chrome's trace viewer renders as
//! stacked counter tracks.
//!
//! [`chrome_trace_json`] serializes any record slice into the Chrome
//! trace-event JSON array format (`chrome://tracing`, Perfetto): spans
//! become complete events (`"ph":"X"`) with microsecond `ts`/`dur`,
//! counters become `"ph":"C"` events.  Records are sorted by timestamp so
//! the output is monotonic regardless of cross-thread flush order.
//!
//! The overhead contract of the crate holds: recording a span is two
//! monotonic clock reads and a `Vec` push on thread-private memory; the
//! store mutex is only touched once per [`THREAD_BUFFER_CAPACITY`]
//! records or at explicit coarse-boundary flushes.

use crate::clock;
use crate::event::FieldValue;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default capacity of the process-wide trace store, in records.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// Records buffered per thread before the store mutex is touched.
pub const THREAD_BUFFER_CAPACITY: usize = 128;

/// One entry of the trace store.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A finished span.
    Span(SpanRecord),
    /// A sampled counter series.
    Counter(CounterRecord),
}

impl TraceRecord {
    /// The job this record is attributed to, if any.
    pub fn job(&self) -> Option<u64> {
        match self {
            TraceRecord::Span(span) => span.job,
            TraceRecord::Counter(counter) => counter.job,
        }
    }

    /// The record's timestamp (a span's start) in monotonic microseconds.
    pub fn ts_us(&self) -> u64 {
        match self {
            TraceRecord::Span(span) => span.start_us,
            TraceRecord::Counter(counter) => counter.ts_us,
        }
    }
}

/// A finished span: a named, categorized interval on one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Span name (`cell`, `sta`, `job_running`, …).
    pub name: &'static str,
    /// Category: the layer that emitted it (`core`, `engine`, `sched`, …).
    pub cat: &'static str,
    /// Trace-local thread id (stable per OS thread, dense from 1).
    pub tid: u64,
    /// The job this span belongs to, if known.
    pub job: Option<u64>,
    /// Start, in monotonic microseconds ([`clock::now_micros`]).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form args, shown in the trace viewer's detail pane.
    pub args: Vec<(&'static str, FieldValue)>,
}

/// A sampled counter series (Chrome `"ph":"C"`): one timestamped set of
/// named values, e.g. a worker's busy/idle/steal micros at exit.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRecord {
    /// Counter track name.
    pub name: &'static str,
    /// Trace-local thread id of the emitter.
    pub tid: u64,
    /// The job this sample belongs to, if known.
    pub job: Option<u64>,
    /// Sample time, in monotonic microseconds.
    pub ts_us: u64,
    /// The series: `(name, value)` pairs.
    pub series: Vec<(&'static str, f64)>,
}

/// The calling thread's stable trace thread id (dense from 1).
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    TID.with(|cell| {
        if cell.get() == 0 {
            cell.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        cell.get()
    })
}

/// Allocates a fresh process-unique span id.
fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// An in-flight span.  Dropping (or calling [`Span::finish`]) stamps the
/// duration and queues the record on the thread buffer.
#[derive(Debug)]
pub struct Span {
    record: Option<SpanRecord>,
}

impl Span {
    /// Starts a root span.
    pub fn begin(name: &'static str, cat: &'static str) -> Span {
        Span::with_parent(name, cat, 0)
    }

    /// Starts a span with an explicit parent id (0 for none).
    pub fn with_parent(name: &'static str, cat: &'static str, parent: u64) -> Span {
        Span {
            record: Some(SpanRecord {
                id: next_span_id(),
                parent,
                name,
                cat,
                tid: current_tid(),
                job: None,
                start_us: clock::now_micros(),
                dur_us: 0,
                args: Vec::new(),
            }),
        }
    }

    /// Starts a child of this span.
    pub fn child(&self, name: &'static str, cat: &'static str) -> Span {
        Span::with_parent(name, cat, self.id())
    }

    /// This span's id, for parent links across threads.
    pub fn id(&self) -> u64 {
        self.record.as_ref().map_or(0, |record| record.id)
    }

    /// Attributes the span to a job (builder style).
    pub fn job(mut self, job: u64) -> Span {
        if let Some(record) = self.record.as_mut() {
            record.job = Some(job);
        }
        self
    }

    /// Attaches a free-form arg (builder style).
    pub fn arg(mut self, name: &'static str, value: impl Into<FieldValue>) -> Span {
        if let Some(record) = self.record.as_mut() {
            record.args.push((name, value.into()));
        }
        self
    }

    /// Attaches a free-form arg to an already-bound span.
    pub fn set_arg(&mut self, name: &'static str, value: impl Into<FieldValue>) {
        if let Some(record) = self.record.as_mut() {
            record.args.push((name, value.into()));
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut record) = self.record.take() {
            record.dur_us = clock::now_micros().saturating_sub(record.start_us);
            push_record(TraceRecord::Span(record));
        }
    }
}

/// Emits a span record with explicit timestamps, for intervals that do
/// not map to one RAII scope (a cell spanning several workers, a job's
/// queued segment).  Returns the new span's id.
#[allow(clippy::too_many_arguments)]
pub fn record_span(
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    dur_us: u64,
    parent: u64,
    job: Option<u64>,
    args: Vec<(&'static str, FieldValue)>,
) -> u64 {
    let id = next_span_id();
    push_record(TraceRecord::Span(SpanRecord {
        id,
        parent,
        name,
        cat,
        tid: current_tid(),
        job,
        start_us,
        dur_us,
        args,
    }));
    id
}

/// Emits a counter sample (rendered as a counter track by the viewer).
pub fn record_counter(name: &'static str, job: Option<u64>, series: Vec<(&'static str, f64)>) {
    push_record(TraceRecord::Counter(CounterRecord {
        name,
        tid: current_tid(),
        job,
        ts_us: clock::now_micros(),
        series,
    }));
}

/// The per-thread buffer; its `Drop` flushes whatever the thread queued
/// but never explicitly drained.
struct ThreadBuffer(Vec<TraceRecord>);

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        if !self.0.is_empty() {
            trace().extend(self.0.drain(..));
        }
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> =
        RefCell::new(ThreadBuffer(Vec::with_capacity(THREAD_BUFFER_CAPACITY)));
}

/// Queues a record on the calling thread's buffer, draining it into the
/// store when full.
fn push_record(record: TraceRecord) {
    let full = BUFFER
        .try_with(|buffer| {
            let mut buffer = buffer.borrow_mut();
            buffer.0.push(record);
            buffer.0.len() >= THREAD_BUFFER_CAPACITY
        })
        // Thread teardown: the buffer destructor already ran, so this
        // late record goes straight to the store.
        .unwrap_or(true);
    if full {
        flush_thread();
    }
}

/// Drains the calling thread's buffered records into the store.  Call at
/// coarse boundaries (cell completion, worker exit, phase end) so traces
/// fetched over the wire are current.
pub fn flush_thread() {
    let _ = BUFFER.try_with(|buffer| {
        let mut buffer = buffer.borrow_mut();
        if !buffer.0.is_empty() {
            trace().extend(buffer.0.drain(..));
        }
    });
}

/// The bounded process-wide trace store: newest records win, evictions
/// are counted.
#[derive(Debug)]
pub struct TraceStore {
    inner: Mutex<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceStore {
    /// A store bounded to `capacity` records (at least 1).
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            inner: Mutex::new(StoreInner {
                buf: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Appends records, evicting oldest entries beyond the capacity.
    pub fn extend(&self, records: impl IntoIterator<Item = TraceRecord>) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        for record in records {
            if inner.buf.len() == inner.capacity {
                inner.buf.pop_front();
                inner.dropped += 1;
            }
            inner.buf.push_back(record);
        }
    }

    /// The newest `limit` records (optionally only those of one job),
    /// oldest first.
    pub fn snapshot(&self, limit: usize, job: Option<u64>) -> Vec<TraceRecord> {
        let inner = self.inner.lock().expect("trace store poisoned");
        let mut records: Vec<TraceRecord> = inner
            .buf
            .iter()
            .rev()
            .filter(|record| job.is_none() || record.job() == job)
            .take(limit)
            .cloned()
            .collect();
        records.reverse();
        records
    }

    /// Records evicted since process start.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace store poisoned").dropped
    }

    /// The current capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("trace store poisoned").capacity
    }

    /// Rebounds the store, evicting (and counting) oldest records if the
    /// new capacity is smaller.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.capacity = capacity.max(1);
        while inner.buf.len() > inner.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
    }
}

/// The process-wide trace store singleton.
pub fn trace() -> &'static TraceStore {
    static TRACE: OnceLock<TraceStore> = OnceLock::new();
    TRACE.get_or_init(|| TraceStore::new(DEFAULT_TRACE_CAPACITY))
}

/// Serializes records into the Chrome trace-event JSON array format
/// (loadable in `chrome://tracing` and Perfetto).  Spans become complete
/// events (`"ph":"X"`), counters become counter events (`"ph":"C"`);
/// records are sorted by timestamp so `ts` is monotonic.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|record| record.ts_us());
    let mut out = String::from("[");
    for (i, record) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match record {
            TraceRecord::Span(span) => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{},\"cat\":{}",
                    span.tid,
                    span.start_us,
                    span.dur_us,
                    json_string(span.name),
                    json_string(span.cat),
                );
                out.push_str(",\"args\":{");
                let _ = write!(out, "\"id\":{},\"parent\":{}", span.id, span.parent);
                if let Some(job) = span.job {
                    let _ = write!(out, ",\"job\":{job}");
                }
                for (name, value) in &span.args {
                    let _ = write!(out, ",{}:", json_string(name));
                    match value {
                        FieldValue::U64(n) => {
                            let _ = write!(out, "{n}");
                        }
                        FieldValue::F64(x) if x.is_finite() => {
                            let _ = write!(out, "{x}");
                        }
                        FieldValue::F64(_) => out.push_str("null"),
                        FieldValue::Str(s) => out.push_str(&json_string(s)),
                    }
                }
                out.push_str("}}");
            }
            TraceRecord::Counter(counter) => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":{}",
                    counter.tid,
                    counter.ts_us,
                    json_string(counter.name),
                );
                out.push_str(",\"args\":{");
                for (i, (name, value)) in counter.series.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:", json_string(name));
                    if value.is_finite() {
                        let _ = write!(out, "{value}");
                    } else {
                        out.push_str("null");
                    }
                }
                out.push_str("}}");
            }
        }
    }
    out.push(']');
    out
}

/// A JSON string literal (quoted, escaped).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_flush_and_filter_by_job() {
        let store = TraceStore::new(64);
        let root = Span::begin("root", "test").job(7);
        let root_id = root.id();
        let child = root.child("child", "test").arg("trials", 6u64);
        let child_parent = {
            // Inspect before drop: the child links to the root.
            child.record.as_ref().expect("open span").parent
        };
        assert_eq!(child_parent, root_id);
        drop(child);
        drop(root);
        flush_thread();
        // The thread buffer drains into the *global* store; pull the two
        // spans out of it and replay them into a private store to keep
        // this test independent of other tests' records.
        let records = trace().snapshot(usize::MAX, Some(7));
        store.extend(records.iter().cloned());
        let mine = store.snapshot(usize::MAX, Some(7));
        assert!(mine
            .iter()
            .any(|r| matches!(r, TraceRecord::Span(s) if s.name == "root" && s.id == root_id)));

        let child = trace()
            .snapshot(usize::MAX, None)
            .into_iter()
            .find_map(|r| match r {
                TraceRecord::Span(s) if s.parent == root_id => Some(s),
                _ => None,
            })
            .expect("child span reached the store");
        assert_eq!(child.name, "child");
        assert_eq!(child.args, vec![("trials", FieldValue::U64(6))]);
        assert_eq!(
            child.job, None,
            "job attribution is per span, not inherited"
        );
    }

    #[test]
    fn the_store_is_bounded_and_counts_drops() {
        let store = TraceStore::new(2);
        for i in 0..5u64 {
            store.extend([TraceRecord::Counter(CounterRecord {
                name: "c",
                tid: 1,
                job: None,
                ts_us: i,
                series: vec![("v", i as f64)],
            })]);
        }
        assert_eq!(store.dropped(), 3);
        let records = store.snapshot(usize::MAX, None);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_us(), 3, "oldest surviving record first");
        store.set_capacity(1);
        assert_eq!(store.dropped(), 4);
        assert_eq!(store.capacity(), 1);
    }

    #[test]
    fn chrome_export_is_a_sorted_array_with_required_keys() {
        let records = vec![
            TraceRecord::Counter(CounterRecord {
                name: "worker_utilization",
                tid: 3,
                job: Some(1),
                ts_us: 900,
                series: vec![("busy_us", 700.0), ("idle_us", f64::NAN)],
            }),
            TraceRecord::Span(SpanRecord {
                id: 2,
                parent: 1,
                name: "cell \"a\"\n",
                cat: "engine",
                tid: 3,
                job: Some(1),
                start_us: 100,
                dur_us: 50,
                args: vec![
                    ("trials", FieldValue::U64(6)),
                    ("note", FieldValue::Str("x".into())),
                ],
            }),
        ];
        let json = chrome_trace_json(&records);
        assert!(json.starts_with('[') && json.ends_with(']'));
        // Sorted by ts: the span (ts 100) precedes the counter (ts 900).
        let span_at = json.find("\"ph\":\"X\"").expect("span event");
        let counter_at = json.find("\"ph\":\"C\"").expect("counter event");
        assert!(span_at < counter_at);
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":100,\"dur\":50"));
        assert!(json.contains("\"name\":\"cell \\\"a\\\"\\n\""));
        assert!(json.contains("\"trials\":6"));
        assert!(json.contains("\"busy_us\":700"));
        assert!(json.contains("\"idle_us\":null"), "{json}");
    }

    #[test]
    fn explicit_records_carry_ids_and_jobs() {
        let id = record_span("job_queued", "sched", 10, 5, 0, Some(42), Vec::new());
        assert!(id > 0);
        record_counter("u", Some(42), vec![("busy_us", 1.0)]);
        flush_thread();
        let records = trace().snapshot(usize::MAX, Some(42));
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::Span(s) if s.id == id && s.dur_us == 5)));
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::Counter(c) if c.series == vec![("busy_us", 1.0)])));
    }
}
