//! A bounded ring buffer of structured events.
//!
//! Events are small typed records — a kind, a monotonic timestamp, the
//! job/cell span they belong to, and a handful of named fields — pushed by
//! the scheduler and engine at lifecycle edges (submitted, started,
//! preempted, evicted, …).  The ring keeps the most recent `capacity`
//! events and counts what it had to drop, so a post-mortem of a cancelled
//! or evicted job can always see the tail of its history.
//!
//! Pushes take a short mutex; event rates are lifecycle-bounded (a few per
//! job), never per-trial, so the lock is cold by construction.

use crate::clock;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One named field value of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (ids, counts, bytes).
    U64(u64),
    /// A float (latencies, rates).
    F64(f64),
    /// A short string (states, client ids, reasons).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(value: u64) -> Self {
        FieldValue::U64(value)
    }
}

impl From<usize> for FieldValue {
    fn from(value: usize) -> Self {
        FieldValue::U64(value as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(value: f64) -> Self {
        FieldValue::F64(value)
    }
}

impl From<&str> for FieldValue {
    fn from(value: &str) -> Self {
        FieldValue::Str(value.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(value: String) -> Self {
        FieldValue::Str(value)
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic timestamp, microseconds since the process epoch
    /// ([`clock::now_micros`]).
    pub ts_us: u64,
    /// Event kind, e.g. `job_submitted` or `result_evicted`.
    pub kind: &'static str,
    /// The job span this event belongs to, if any.
    pub job: Option<u64>,
    /// The campaign-cell span within the job, if any.
    pub cell: Option<u64>,
    /// Additional named fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// A new event of the given kind, stamped with the current monotonic
    /// time.
    pub fn new(kind: &'static str) -> Self {
        Event {
            ts_us: clock::now_micros(),
            kind,
            job: None,
            cell: None,
            fields: Vec::new(),
        }
    }

    /// Attaches the job span id.
    pub fn job(mut self, job: u64) -> Self {
        self.job = Some(job);
        self
    }

    /// Attaches the cell span id.
    pub fn cell(mut self, cell: u64) -> Self {
        self.cell = Some(cell);
        self
    }

    /// Attaches a named field.
    pub fn field(mut self, name: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((name, value.into()));
        self
    }
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// The bounded event buffer: keeps the newest `capacity` events.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<Ring>,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            inner: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Resizes the ring; excess oldest events are dropped (and counted).
    pub fn set_capacity(&self, capacity: usize) {
        let mut ring = self.inner.lock().expect("event ring poisoned");
        ring.capacity = capacity.max(1);
        while ring.buf.len() > ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: Event) {
        let mut ring = self.inner.lock().expect("event ring poisoned");
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(event);
    }

    /// The newest events, oldest first: at most `limit`, optionally only
    /// those belonging to `job`.
    pub fn recent(&self, limit: usize, job: Option<u64>) -> Vec<Event> {
        let ring = self.inner.lock().expect("event ring poisoned");
        let matches = |event: &&Event| job.is_none() || event.job == job;
        let mut newest: Vec<Event> = ring
            .buf
            .iter()
            .rev()
            .filter(matches)
            .take(limit)
            .cloned()
            .collect();
        newest.reverse();
        newest
    }

    /// Number of events evicted because the ring was full (plus any
    /// trimmed by [`EventRing::set_capacity`]).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event ring poisoned").dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("event ring poisoned").capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let ring = EventRing::new(3);
        for job in 0..5u64 {
            ring.push(Event::new("job_submitted").job(job));
        }
        let kept: Vec<_> = ring.recent(10, None).iter().map(|e| e.job).collect();
        assert_eq!(kept, vec![Some(2), Some(3), Some(4)]);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn recent_filters_by_job_and_limits() {
        let ring = EventRing::new(16);
        for i in 0..6u64 {
            ring.push(Event::new("tick").job(i % 2));
        }
        let job0: Vec<_> = ring.recent(10, Some(0)).iter().map(|e| e.ts_us).collect();
        assert_eq!(job0.len(), 3);
        assert!(job0.windows(2).all(|w| w[0] <= w[1]), "oldest first");
        assert_eq!(ring.recent(2, None).len(), 2);
    }

    #[test]
    fn shrinking_capacity_trims_the_oldest() {
        let ring = EventRing::new(8);
        for job in 0..8u64 {
            ring.push(Event::new("tick").job(job));
        }
        ring.set_capacity(2);
        let kept: Vec<_> = ring.recent(10, None).iter().map(|e| e.job).collect();
        assert_eq!(kept, vec![Some(6), Some(7)]);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.capacity(), 2);
    }

    #[test]
    fn events_carry_spans_and_fields() {
        let event = Event::new("result_evicted")
            .job(7)
            .cell(3)
            .field("bytes", 4096u64)
            .field("client", "alice");
        assert_eq!(event.job, Some(7));
        assert_eq!(event.cell, Some(3));
        assert_eq!(event.fields[0], ("bytes", FieldValue::U64(4096)));
        assert_eq!(
            event.fields[1],
            ("client", FieldValue::Str("alice".to_string()))
        );
    }
}
