//! A process-wide monotonic clock.
//!
//! Every timestamp the observability layer records — event times, job
//! wait/run latencies — comes from one [`Instant`]-backed epoch pinned at
//! first use.  Unlike `SystemTime`, the readings can never jump backwards
//! under wall-clock adjustment, so latency differences are always
//! non-negative and event streams are totally ordered within a process.

use std::sync::OnceLock;
use std::time::Instant;

/// The process epoch: pinned the first time any obs timestamp is taken.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process epoch (first obs timestamp).
///
/// Monotonically non-decreasing across all threads.  The `u64` range
/// covers more than 500 000 years of uptime, so the narrowing cast from
/// `u128` microseconds is unobservable.
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// The seconds between two [`now_micros`] readings, clamped at zero.
///
/// The clamp is belt-and-braces: readings are monotonic, but callers that
/// persist timestamps across restarts could otherwise manufacture a
/// negative interval.
pub fn seconds_between(start_us: u64, end_us: u64) -> f64 {
    end_us.saturating_sub(start_us) as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_monotonic() {
        let mut last = now_micros();
        for _ in 0..1000 {
            let next = now_micros();
            assert!(next >= last);
            last = next;
        }
    }

    #[test]
    fn intervals_never_go_negative() {
        assert_eq!(seconds_between(10, 4), 0.0);
        assert_eq!(seconds_between(1_000_000, 3_500_000), 2.5);
    }
}
