//! The metric primitives: atomic counters and gauges, per-thread sharded
//! hot-path counters, and fixed-bucket histograms.
//!
//! Everything here is lock-free on the write path: a metric update is one
//! (or, for histograms, three) relaxed atomic operations.  Reads fold the
//! atomics without stopping writers, so a snapshot is a consistent-enough
//! point-in-time view — each individual value is exact, but values read
//! microseconds apart may straddle concurrent updates.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that can move both ways (queue depths, running
/// slots, retained bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge to `value`.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of shards of a [`ShardedCounter`]; threads are assigned
/// round-robin, so contention only appears beyond this many concurrent
/// writers.
const SHARDS: usize = 32;

/// One shard, padded to a cache line so neighbouring shards never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard(AtomicU64);

/// The calling thread's stable shard index.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    INDEX.with(|cell| {
        if cell.get() == usize::MAX {
            cell.set(NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS);
        }
        cell.get()
    })
}

/// A counter sharded per thread for write-heavy hot paths (the ISS trial
/// loop): each thread adds to its own cache-line-padded shard, and reads
/// fold all shards.  Updates cost one uncontended relaxed `fetch_add`.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Vec<Shard>,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        ShardedCounter::new()
    }
}

impl ShardedCounter {
    /// A sharded counter starting at zero.
    pub fn new() -> Self {
        ShardedCounter {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    /// Adds `n` to the calling thread's shard.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the calling thread's shard.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The folded value: the sum over all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A point-in-time view of a [`Histogram`], in Prometheus shape.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper bound, cumulative count)` per bucket; the final bound is
    /// `f64::INFINITY` and its count equals `count`.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// A fixed-bucket histogram with inclusive upper bounds (Prometheus `le`
/// semantics): an observation equal to a bound lands in that bound's
/// bucket.  The bucket layout is fixed at construction; observing is
/// lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One per bound plus the overflow (`+Inf`) bucket; *non*-cumulative
    /// internally, folded into cumulative form by [`Histogram::snapshot`].
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations as `f64` bits, updated with a CAS loop.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given strictly increasing finite upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-increasing or contains a
    /// non-finite bound (the `+Inf` bucket is implicit).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.  `NaN` observations are dropped (they
    /// carry no magnitude to bucket).
    pub fn observe(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        // First bucket whose bound is >= value: Prometheus-inclusive `le`.
        let index = self.bounds.partition_point(|bound| value > *bound);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let updated = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                updated,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// The current cumulative-bucket view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, bucket)| {
                cumulative += bucket.load(Ordering::Relaxed);
                let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                (bound, cumulative)
            })
            .collect();
        HistogramSnapshot {
            buckets,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_fold_updates() {
        let counter = Counter::new();
        counter.inc();
        counter.add(9);
        assert_eq!(counter.get(), 10);

        let gauge = Gauge::new();
        gauge.set(5);
        gauge.add(-8);
        assert_eq!(gauge.get(), -3);
    }

    #[test]
    fn sharded_counter_folds_across_threads() {
        let counter = std::sync::Arc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let counter = std::sync::Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        // Reads are safe mid-flight (they fold whatever has landed)...
        assert!(counter.get() <= 80_000);
        for thread in threads {
            thread.join().expect("worker finishes");
        }
        // ...and exact once all writers are done.
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn histogram_bounds_are_inclusive_upper_bounds() {
        let histogram = Histogram::new(&[1.0, 5.0, 10.0]);
        // On-boundary observations land in that boundary's bucket.
        for value in [0.5, 1.0, 5.0, 5.1, 10.0, 11.0, f64::INFINITY] {
            histogram.observe(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(
            snapshot.buckets,
            vec![
                (1.0, 2),           // 0.5, 1.0 (inclusive)
                (5.0, 3),           // + 5.0 (inclusive); 5.1 spills over
                (10.0, 5),          // + 5.1, 10.0
                (f64::INFINITY, 7), // + 11.0 and the Inf observation
            ]
        );
        assert_eq!(snapshot.count, 7);

        // NaN is dropped, Inf lands in the overflow bucket (counted above).
        histogram.observe(f64::NAN);
        assert_eq!(histogram.snapshot().count, 7);
    }

    #[test]
    fn histogram_sum_accumulates() {
        let histogram = Histogram::new(&[1.0]);
        histogram.observe(0.25);
        histogram.observe(4.0);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.sum, 4.25);
        assert_eq!(snapshot.count, 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }
}
