//! Prometheus text exposition (version 0.0.4) rendering of a registry
//! [`Snapshot`].

use crate::registry::{SampleValue, Snapshot};
use std::fmt::Write as _;

/// The `Content-Type` of the rendered exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Renders a snapshot in Prometheus text exposition format.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(family.help));
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        for sample in &family.samples {
            match &sample.value {
                SampleValue::Counter(value) => {
                    let _ = writeln!(
                        out,
                        "{}{} {value}",
                        family.name,
                        label_set(&sample.labels, None)
                    );
                }
                SampleValue::Gauge(value) => {
                    let _ = writeln!(
                        out,
                        "{}{} {value}",
                        family.name,
                        label_set(&sample.labels, None)
                    );
                }
                SampleValue::Histogram(histogram) => {
                    for (bound, cumulative) in &histogram.buckets {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            family.name,
                            label_set(&sample.labels, Some(*bound))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        family.name,
                        label_set(&sample.labels, None),
                        histogram.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        family.name,
                        label_set(&sample.labels, None),
                        histogram.count
                    );
                }
            }
        }
    }
    out
}

/// Renders a `{name="value",...}` label set, empty when there are no
/// labels; `le` appends the histogram bucket bound.
fn label_set(labels: &[(&'static str, String)], le: Option<f64>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(name, value)| format!("{name}=\"{}\"", escape_label(value)))
        .collect();
    if let Some(bound) = le {
        let rendered = if bound.is_infinite() {
            "+Inf".to_string()
        } else {
            format!("{bound}")
        };
        pairs.push(format!("le=\"{rendered}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::HistogramSnapshot;
    use crate::registry::{Family, FamilyKind, Sample};

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let snapshot = Snapshot {
            families: vec![
                Family {
                    name: "sfi_trials_total",
                    help: "Monte-Carlo trials simulated",
                    kind: FamilyKind::Counter,
                    samples: vec![Sample {
                        labels: Vec::new(),
                        value: SampleValue::Counter(42),
                    }],
                },
                Family {
                    name: "sfi_sched_queue_depth",
                    help: "Queued jobs, by priority class",
                    kind: FamilyKind::Gauge,
                    samples: vec![Sample {
                        labels: vec![("priority", "high".to_string())],
                        value: SampleValue::Gauge(-1),
                    }],
                },
                Family {
                    name: "sfi_sched_job_wait_seconds",
                    help: "Seconds jobs spent queued",
                    kind: FamilyKind::Histogram,
                    samples: vec![Sample {
                        labels: Vec::new(),
                        value: SampleValue::Histogram(HistogramSnapshot {
                            buckets: vec![(0.01, 1), (f64::INFINITY, 3)],
                            sum: 1.25,
                            count: 3,
                        }),
                    }],
                },
            ],
        };
        let text = render(&snapshot);
        assert!(text.contains("# HELP sfi_trials_total Monte-Carlo trials simulated\n"));
        assert!(text.contains("# TYPE sfi_trials_total counter\n"));
        assert!(text.contains("\nsfi_trials_total 42\n"));
        assert!(text.contains("sfi_sched_queue_depth{priority=\"high\"} -1\n"));
        assert!(text.contains("sfi_sched_job_wait_seconds_bucket{le=\"0.01\"} 1\n"));
        assert!(text.contains("sfi_sched_job_wait_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("sfi_sched_job_wait_seconds_sum 1.25\n"));
        assert!(text.contains("sfi_sched_job_wait_seconds_count 3\n"));
    }

    #[test]
    fn help_and_label_values_are_escaped() {
        assert_eq!(escape_help("a\nb\\c"), "a\\nb\\\\c");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
    }

    #[test]
    fn rendered_label_values_escape_quotes_backslashes_and_newlines() {
        let snapshot = Snapshot {
            families: vec![Family {
                name: "sfi_test_labels",
                help: "backslash \\ and\nnewline in help",
                kind: FamilyKind::Gauge,
                samples: vec![Sample {
                    labels: vec![
                        ("quoted", "say \"hi\"".to_string()),
                        ("path", "C:\\tmp".to_string()),
                        ("multiline", "a\nb".to_string()),
                    ],
                    value: SampleValue::Gauge(1),
                }],
            }],
        };
        let text = render(&snapshot);
        // The help line is one physical line with escaped specials.
        assert!(text.contains("# HELP sfi_test_labels backslash \\\\ and\\nnewline in help\n"));
        // Every label value survives as one exposition token.
        assert!(text.contains(
            "sfi_test_labels{quoted=\"say \\\"hi\\\"\",path=\"C:\\\\tmp\",multiline=\"a\\nb\"} 1\n"
        ));
        // No raw (unescaped) newline leaks into the middle of a sample
        // line: every physical line is a comment or ends after the value.
        assert!(text
            .lines()
            .all(|line| { line.starts_with('#') || line.ends_with(" 1") || line.is_empty() }));
    }

    #[test]
    fn histogram_sum_renders_nonfinite_values_verbatim() {
        // A NaN sum (e.g. a poisoned CAS-accumulated f64) must not panic
        // the renderer; Prometheus' text format accepts NaN/Inf tokens.
        let histogram = |sum: f64| Snapshot {
            families: vec![Family {
                name: "sfi_test_hist",
                help: "h",
                kind: FamilyKind::Histogram,
                samples: vec![Sample {
                    labels: Vec::new(),
                    value: SampleValue::Histogram(HistogramSnapshot {
                        buckets: vec![(1.0, 0), (f64::INFINITY, 2)],
                        sum,
                        count: 2,
                    }),
                }],
            }],
        };
        let text = render(&histogram(f64::NAN));
        assert!(text.contains("sfi_test_hist_sum NaN\n"));
        assert!(text.contains("sfi_test_hist_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("sfi_test_hist_count 2\n"));
        let text = render(&histogram(f64::INFINITY));
        assert!(text.contains("sfi_test_hist_sum inf\n"));
    }

    #[test]
    fn infinite_bucket_bounds_always_spell_plus_inf() {
        // `+Inf` is the required spelling even when labels precede it.
        let snapshot = Snapshot {
            families: vec![Family {
                name: "sfi_test_labelled_hist",
                help: "h",
                kind: FamilyKind::Histogram,
                samples: vec![Sample {
                    labels: vec![("model", "dta".to_string())],
                    value: SampleValue::Histogram(HistogramSnapshot {
                        buckets: vec![(f64::INFINITY, 1)],
                        sum: 0.5,
                        count: 1,
                    }),
                }],
            }],
        };
        let text = render(&snapshot);
        assert!(text.contains("sfi_test_labelled_hist_bucket{model=\"dta\",le=\"+Inf\"} 1\n"));
    }
}
