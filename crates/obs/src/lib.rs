//! Observability substrate of the sfi workspace.
//!
//! The statistical machinery of the reproduction — PoFF estimates,
//! failure-probability grids, the serve-mode scheduler — is only as
//! trustworthy as the campaign pipeline producing it, so this crate gives
//! every layer one cheap, always-on place to report what it is doing:
//!
//! * [`metric`] — lock-free primitives: atomic [`Counter`]/[`Gauge`], the
//!   per-thread [`ShardedCounter`] for the ISS trial hot path (one
//!   uncontended relaxed add per update, folded on read), and fixed-bucket
//!   [`Histogram`]s with Prometheus `le` semantics.
//! * [`registry`] — the process-wide [`Metrics`] struct: one field per
//!   family, built once ([`metrics`]), sampled without locks
//!   ([`Metrics::snapshot`]).  Families cover the three layers that
//!   matter: the ISS (trials, cycles, per-model injected faults, watchdog
//!   trips), the campaign engine (steals, cells, adaptive-stop savings,
//!   checkpoints) and the serve scheduler (queue depths, quotas,
//!   preemptions, evictions, cache hits, wait/run latencies).
//! * [`event`] — a bounded ring ([`events`]) of structured [`Event`]s with
//!   monotonic timestamps and per-job/per-cell span ids, for post-mortem
//!   of cancelled or evicted jobs.
//! * [`span`] — lightweight start/stop spans ([`Span`]) with parent
//!   links, buffered per thread and drained into the bounded process-wide
//!   trace store ([`trace`]), plus sampled counter tracks and a Chrome
//!   trace-event serializer ([`chrome_trace_json`]) loadable in
//!   `chrome://tracing` / Perfetto.
//! * [`alerts`] — declarative threshold rules ([`AlertRule`]: gauge above
//!   a limit for N seconds, counter rate above a limit) evaluated against
//!   registry snapshots into firing/resolved [`AlertStatus`] state.
//! * [`clock`] — the shared monotonic clock behind every timestamp.
//! * [`prometheus`] — text exposition rendering of a snapshot.
//!
//! The overhead contract: nothing in this crate takes a lock on a
//! per-trial path, and per-trial updates are a handful of relaxed atomic
//! adds on thread-private cache lines — recording a span is two clock
//! reads and a push onto a thread-private buffer, and the trace-store
//! mutex is only touched at coarse boundaries (buffer overflow, cell
//! completion, worker exit) — the campaign hot loop shows no measurable
//! regression against the tracked `BENCH_iss.json` baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
pub mod clock;
pub mod event;
pub mod metric;
pub mod prometheus;
pub mod registry;
pub mod span;

pub use alerts::{default_rules, AlertCondition, AlertRule, AlertStatus, Alerts};
pub use event::{Event, EventRing, FieldValue};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, ShardedCounter};
pub use registry::{
    events, metrics, Family, FamilyKind, Metrics, Sample, SampleValue, Snapshot,
    DEFAULT_EVENT_CAPACITY, FAULT_MODEL_LABELS, PRIORITY_LABELS,
};
pub use span::{
    chrome_trace_json, trace, CounterRecord, Span, SpanRecord, TraceRecord, TraceStore,
    DEFAULT_TRACE_CAPACITY,
};
