//! Observability substrate of the sfi workspace.
//!
//! The statistical machinery of the reproduction — PoFF estimates,
//! failure-probability grids, the serve-mode scheduler — is only as
//! trustworthy as the campaign pipeline producing it, so this crate gives
//! every layer one cheap, always-on place to report what it is doing:
//!
//! * [`metric`] — lock-free primitives: atomic [`Counter`]/[`Gauge`], the
//!   per-thread [`ShardedCounter`] for the ISS trial hot path (one
//!   uncontended relaxed add per update, folded on read), and fixed-bucket
//!   [`Histogram`]s with Prometheus `le` semantics.
//! * [`registry`] — the process-wide [`Metrics`] struct: one field per
//!   family, built once ([`metrics`]), sampled without locks
//!   ([`Metrics::snapshot`]).  Families cover the three layers that
//!   matter: the ISS (trials, cycles, per-model injected faults, watchdog
//!   trips), the campaign engine (steals, cells, adaptive-stop savings,
//!   checkpoints) and the serve scheduler (queue depths, quotas,
//!   preemptions, evictions, cache hits, wait/run latencies).
//! * [`event`] — a bounded ring ([`events`]) of structured [`Event`]s with
//!   monotonic timestamps and per-job/per-cell span ids, for post-mortem
//!   of cancelled or evicted jobs.
//! * [`clock`] — the shared monotonic clock behind every timestamp.
//! * [`prometheus`] — text exposition rendering of a snapshot.
//!
//! The overhead contract: nothing in this crate takes a lock on a
//! per-trial path, and per-trial updates are a handful of relaxed atomic
//! adds on thread-private cache lines — the campaign hot loop shows no
//! measurable regression against the tracked `BENCH_iss.json` baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod metric;
pub mod prometheus;
pub mod registry;

pub use event::{Event, EventRing, FieldValue};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, ShardedCounter};
pub use registry::{
    events, metrics, Family, FamilyKind, Metrics, Sample, SampleValue, Snapshot,
    DEFAULT_EVENT_CAPACITY, FAULT_MODEL_LABELS, PRIORITY_LABELS,
};
