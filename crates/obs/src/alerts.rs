//! Declarative threshold alerting over registry snapshots.
//!
//! An [`AlertRule`] names a metric family and a condition — a gauge held
//! above a limit for N seconds, or a counter increasing faster than a
//! rate.  [`Alerts::evaluate`] folds a registry [`Snapshot`] (summing a
//! family's samples across label sets) through every rule and returns the
//! firing/resolved state plus lifetime fire/resolve counts.
//!
//! Evaluation is **poll-driven**: state advances when somebody asks (the
//! `alerts` wire frame, the `/alerts` HTTP route, a test).  A gauge rule
//! starts a hold timer the first evaluation that sees the value above the
//! limit and fires once the value has stayed above it for the configured
//! hold; a rate rule compares consecutive evaluations, so its first
//! evaluation never fires.
//!
//! The default rule set ([`default_rules`]) covers the two conditions the
//! roadmap called out: scheduler queue-depth saturation
//! (`sfi_sched_queue_depth` summed over priority classes) and event-ring
//! overflow (`sfi_events_dropped_total` increasing between polls).

use crate::clock;
use crate::registry::{SampleValue, Snapshot};
use std::sync::{Mutex, OnceLock};

/// The threshold condition of a rule.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertCondition {
    /// Fires while the summed gauge value has been strictly above
    /// `limit` for at least `for_seconds` consecutive seconds; resolves
    /// as soon as the value drops to the limit or below.
    GaugeAbove {
        /// Metric family the rule watches.
        family: String,
        /// Exclusive threshold.
        limit: f64,
        /// How long the value must stay above the limit before firing.
        for_seconds: f64,
    },
    /// Fires while the summed counter grows faster than `per_second`
    /// between consecutive evaluations (a limit of 0 fires on any
    /// growth); resolves after an evaluation interval at or below the
    /// rate.
    CounterRateAbove {
        /// Metric family the rule watches.
        family: String,
        /// Exclusive rate threshold, in units per second.
        per_second: f64,
    },
}

impl AlertCondition {
    /// The watched family name.
    pub fn family(&self) -> &str {
        match self {
            AlertCondition::GaugeAbove { family, .. } => family,
            AlertCondition::CounterRateAbove { family, .. } => family,
        }
    }

    /// The threshold value (gauge limit or rate limit).
    pub fn threshold(&self) -> f64 {
        match self {
            AlertCondition::GaugeAbove { limit, .. } => *limit,
            AlertCondition::CounterRateAbove { per_second, .. } => *per_second,
        }
    }

    /// The wire/display spelling of the condition kind.
    pub fn kind(&self) -> &'static str {
        match self {
            AlertCondition::GaugeAbove { .. } => "gauge_above",
            AlertCondition::CounterRateAbove { .. } => "counter_rate_above",
        }
    }
}

/// A named threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name, unique within a rule set.
    pub name: String,
    /// The condition.
    pub condition: AlertCondition,
}

impl AlertRule {
    /// A gauge-above-limit-for-N-seconds rule.
    pub fn gauge_above(name: &str, family: &str, limit: f64, for_seconds: f64) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            condition: AlertCondition::GaugeAbove {
                family: family.to_string(),
                limit,
                for_seconds: for_seconds.max(0.0),
            },
        }
    }

    /// A counter-rate-above-limit rule.
    pub fn counter_rate_above(name: &str, family: &str, per_second: f64) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            condition: AlertCondition::CounterRateAbove {
                family: family.to_string(),
                per_second: per_second.max(0.0),
            },
        }
    }
}

/// The built-in rule set: queue-depth saturation and event-ring drops.
pub fn default_rules(
    queue_depth_limit: f64,
    queue_hold_seconds: f64,
    drop_rate_per_second: f64,
) -> Vec<AlertRule> {
    vec![
        AlertRule::gauge_above(
            "scheduler_queue_saturated",
            "sfi_sched_queue_depth",
            queue_depth_limit,
            queue_hold_seconds,
        ),
        AlertRule::counter_rate_above(
            "event_ring_dropping",
            "sfi_events_dropped_total",
            drop_rate_per_second,
        ),
    ]
}

/// One rule's evaluated state.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// The rule name.
    pub rule: String,
    /// The watched family.
    pub family: String,
    /// The condition kind (`gauge_above` / `counter_rate_above`).
    pub kind: &'static str,
    /// The configured threshold.
    pub threshold: f64,
    /// The evaluated value: the summed gauge, or the observed rate.
    pub value: f64,
    /// Whether the rule is currently firing.
    pub firing: bool,
    /// When the current firing episode started, if firing.
    pub since_us: Option<u64>,
    /// Lifetime count of resolved→firing transitions.
    pub fired_total: u64,
    /// Lifetime count of firing→resolved transitions.
    pub resolved_total: u64,
}

/// Per-rule evaluation state.
#[derive(Debug, Default)]
struct RuleState {
    firing: bool,
    firing_since_us: Option<u64>,
    /// For gauge rules: when the value first went above the limit.
    above_since_us: Option<u64>,
    /// For rate rules: the previous `(ts_us, value)` observation.
    last: Option<(u64, f64)>,
    fired_total: u64,
    resolved_total: u64,
}

impl RuleState {
    fn fire(&mut self, now_us: u64) {
        if !self.firing {
            self.firing = true;
            self.firing_since_us = Some(now_us);
            self.fired_total += 1;
        }
    }

    fn resolve(&mut self) {
        if self.firing {
            self.firing = false;
            self.firing_since_us = None;
            self.resolved_total += 1;
        }
    }
}

/// A rule set with its evaluation state.
#[derive(Debug, Default)]
pub struct Alerts {
    inner: Mutex<Vec<(AlertRule, RuleState)>>,
}

impl Alerts {
    /// An alert set over `rules`.
    pub fn new(rules: Vec<AlertRule>) -> Alerts {
        let alerts = Alerts::default();
        alerts.install(rules);
        alerts
    }

    /// Replaces the rule set, resetting all evaluation state.
    pub fn install(&self, rules: Vec<AlertRule>) {
        let mut inner = self.inner.lock().expect("alerts poisoned");
        *inner = rules
            .into_iter()
            .map(|rule| (rule, RuleState::default()))
            .collect();
    }

    /// The installed rules.
    pub fn rules(&self) -> Vec<AlertRule> {
        self.inner
            .lock()
            .expect("alerts poisoned")
            .iter()
            .map(|(rule, _)| rule.clone())
            .collect()
    }

    /// Evaluates every rule against `snapshot` at the current time.
    pub fn evaluate(&self, snapshot: &Snapshot) -> Vec<AlertStatus> {
        self.evaluate_at(snapshot, clock::now_micros())
    }

    /// Evaluates every rule against `snapshot` as of `now_us` (monotonic
    /// micros; exposed for deterministic tests).
    pub fn evaluate_at(&self, snapshot: &Snapshot, now_us: u64) -> Vec<AlertStatus> {
        let mut inner = self.inner.lock().expect("alerts poisoned");
        inner
            .iter_mut()
            .map(|(rule, state)| {
                let total = family_total(snapshot, rule.condition.family()).unwrap_or(0.0);
                let value = match &rule.condition {
                    AlertCondition::GaugeAbove {
                        limit, for_seconds, ..
                    } => {
                        if total > *limit {
                            let since = *state.above_since_us.get_or_insert(now_us);
                            if clock::seconds_between(since, now_us) >= *for_seconds {
                                state.fire(now_us);
                            }
                        } else {
                            state.above_since_us = None;
                            state.resolve();
                        }
                        total
                    }
                    AlertCondition::CounterRateAbove { per_second, .. } => {
                        let rate = match state.last {
                            Some((then_us, then)) if now_us > then_us => {
                                (total - then).max(0.0) / clock::seconds_between(then_us, now_us)
                            }
                            _ => 0.0,
                        };
                        let warmed_up = state.last.is_some();
                        state.last = Some((now_us, total));
                        if warmed_up && rate > *per_second {
                            state.fire(now_us);
                        } else {
                            state.resolve();
                        }
                        rate
                    }
                };
                AlertStatus {
                    rule: rule.name.clone(),
                    family: rule.condition.family().to_string(),
                    kind: rule.condition.kind(),
                    threshold: rule.condition.threshold(),
                    value,
                    firing: state.firing,
                    since_us: state.firing_since_us,
                    fired_total: state.fired_total,
                    resolved_total: state.resolved_total,
                }
            })
            .collect()
    }
}

/// The summed value of a family's samples: counters and gauges add up
/// across label sets; histograms have no single value and yield `None`.
fn family_total(snapshot: &Snapshot, family: &str) -> Option<f64> {
    let family = snapshot.families.iter().find(|f| f.name == family)?;
    let mut total = 0.0;
    for sample in &family.samples {
        match &sample.value {
            SampleValue::Counter(value) => total += *value as f64,
            SampleValue::Gauge(value) => total += *value as f64,
            SampleValue::Histogram(_) => return None,
        }
    }
    Some(total)
}

/// The process-wide alert set singleton, seeded with [`default_rules`]
/// (queue depth above 8 held for 5 s; any event-ring drops).  Servers
/// replace the set at startup via [`Alerts::install`].
pub fn alerts() -> &'static Alerts {
    static ALERTS: OnceLock<Alerts> = OnceLock::new();
    ALERTS.get_or_init(|| Alerts::new(default_rules(8.0, 5.0, 0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Family, FamilyKind, Sample, SampleValue};

    /// A snapshot with one gauge family (two labelled samples summing to
    /// `depth`) and one counter family at `dropped`.
    fn snapshot(depth: i64, dropped: u64) -> Snapshot {
        Snapshot {
            families: vec![
                Family {
                    name: "sfi_sched_queue_depth",
                    help: "",
                    kind: FamilyKind::Gauge,
                    samples: vec![
                        Sample {
                            labels: vec![("priority", "low".to_string())],
                            value: SampleValue::Gauge(depth - depth / 2),
                        },
                        Sample {
                            labels: vec![("priority", "high".to_string())],
                            value: SampleValue::Gauge(depth / 2),
                        },
                    ],
                },
                Family {
                    name: "sfi_events_dropped_total",
                    help: "",
                    kind: FamilyKind::Counter,
                    samples: vec![Sample {
                        labels: Vec::new(),
                        value: SampleValue::Counter(dropped),
                    }],
                },
            ],
        }
    }

    #[test]
    fn a_gauge_rule_fires_after_the_hold_and_resolves() {
        let alerts = Alerts::new(vec![AlertRule::gauge_above(
            "saturated",
            "sfi_sched_queue_depth",
            4.0,
            2.0,
        )]);
        // Above the limit, but not yet for two seconds: pending.
        let s = alerts.evaluate_at(&snapshot(6, 0), 1_000_000);
        assert!(!s[0].firing);
        assert_eq!(s[0].value, 6.0);
        // Still above at +1 s: hold not met.
        assert!(!alerts.evaluate_at(&snapshot(6, 0), 2_000_000)[0].firing);
        // Still above at +2 s: fires.
        let s = alerts.evaluate_at(&snapshot(7, 0), 3_000_000);
        assert!(s[0].firing);
        assert_eq!(s[0].since_us, Some(3_000_000));
        assert_eq!(s[0].fired_total, 1);
        // Dips to the limit: resolves (the threshold is exclusive).
        let s = alerts.evaluate_at(&snapshot(4, 0), 4_000_000);
        assert!(!s[0].firing);
        assert_eq!(s[0].resolved_total, 1);
        assert_eq!(s[0].since_us, None);
        // A fresh excursion restarts the hold from scratch.
        assert!(!alerts.evaluate_at(&snapshot(9, 0), 5_000_000)[0].firing);
        assert!(alerts.evaluate_at(&snapshot(9, 0), 8_000_000)[0].firing);
        assert_eq!(
            alerts.evaluate_at(&snapshot(9, 0), 8_000_001)[0].fired_total,
            2
        );
    }

    #[test]
    fn a_rate_rule_compares_consecutive_evaluations() {
        let alerts = Alerts::new(vec![AlertRule::counter_rate_above(
            "dropping",
            "sfi_events_dropped_total",
            0.0,
        )]);
        // First evaluation: no previous point, never fires.
        let s = alerts.evaluate_at(&snapshot(0, 5), 1_000_000);
        assert!(!s[0].firing);
        assert_eq!(s[0].value, 0.0);
        // 10 drops over one second: fires at rate 10/s.
        let s = alerts.evaluate_at(&snapshot(0, 15), 2_000_000);
        assert!(s[0].firing);
        assert_eq!(s[0].value, 10.0);
        assert_eq!(s[0].fired_total, 1);
        // Flat interval: resolves.
        let s = alerts.evaluate_at(&snapshot(0, 15), 3_000_000);
        assert!(!s[0].firing);
        assert_eq!(s[0].resolved_total, 1);
    }

    #[test]
    fn missing_and_histogram_families_read_as_zero() {
        let alerts = Alerts::new(vec![AlertRule::gauge_above(
            "ghost",
            "sfi_nonexistent",
            -1.0,
            0.0,
        )]);
        // Value 0 > -1: even an absent family can fire, proving the
        // evaluation defaulted to zero rather than erroring.
        assert!(alerts.evaluate_at(&snapshot(0, 0), 1_000_000)[0].firing);
    }

    #[test]
    fn install_resets_state_and_the_singleton_has_default_rules() {
        let alerts = Alerts::new(vec![AlertRule::gauge_above(
            "saturated",
            "sfi_sched_queue_depth",
            0.0,
            0.0,
        )]);
        assert!(alerts.evaluate_at(&snapshot(3, 0), 1_000_000)[0].firing);
        alerts.install(default_rules(8.0, 5.0, 0.0));
        let rules = alerts.rules();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "scheduler_queue_saturated");
        assert_eq!(rules[1].condition.kind(), "counter_rate_above");
        let s = alerts.evaluate_at(&snapshot(3, 0), 2_000_000);
        assert!(s
            .iter()
            .all(|status| !status.firing && status.fired_total == 0));
        assert_eq!(super::alerts().rules().len(), 2);
    }
}
