//! The process-wide metric registry.
//!
//! Rather than a dynamic name→metric map, the registry is one static
//! struct with a field per family, built once on first use: registration
//! cannot race, lookups are field accesses (no hashing, no locks on the
//! hot path), and [`Metrics::snapshot`] enumerates every family with its
//! name, help text and type in one place.

use crate::event::EventRing;
use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot, ShardedCounter};
use std::sync::OnceLock;

/// Label values of the per-model fault counter, in wire-format spelling
/// and the canonical model order (None, A, B, B+, C).
pub const FAULT_MODEL_LABELS: [&str; 5] = ["none", "fixed_probability", "sta", "sta_noise", "dta"];

/// Label values of the per-priority scheduler gauges, lowest first.
pub const PRIORITY_LABELS: [&str; 3] = ["low", "normal", "high"];

/// Upper bounds of the job wait/run latency histograms, in seconds.
const LATENCY_BOUNDS_S: [f64; 8] = [0.001, 0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0];

/// Every metric family of the process.  Obtain the singleton via
/// [`metrics`]; update fields directly, sample with
/// [`Metrics::snapshot`].
#[derive(Debug)]
pub struct Metrics {
    // — ISS hot path (sharded: updated once per trial by worker threads) —
    /// Monte-Carlo trials simulated, all callers (engine, sweeps, perf).
    pub trials: ShardedCounter,
    /// Simulated clock cycles.
    pub iss_cycles: ShardedCounter,
    /// Faults injected, by fault model ([`FAULT_MODEL_LABELS`] order).
    pub iss_faults: [ShardedCounter; 5],
    /// Runs aborted by the watchdog cycle limit.
    pub iss_watchdog_trips: ShardedCounter,

    // — campaign engine —
    /// Jobs a worker popped from another worker's queue shard.
    pub engine_steals: ShardedCounter,
    /// Campaign cells completed.
    pub engine_cells_finished: Counter,
    /// Trials the adaptive stopping rule avoided (budgeted minus run).
    pub engine_trials_saved: Counter,
    /// Checkpoint documents written.
    pub engine_checkpoint_writes: Counter,
    /// Microseconds campaign workers spent executing trials.
    pub engine_worker_busy_us: ShardedCounter,
    /// Microseconds campaign workers spent asleep with nothing to do.
    pub engine_worker_idle_us: ShardedCounter,
    /// Microseconds campaign workers spent looking for (stealing) work.
    pub engine_worker_steal_us: ShardedCounter,

    // — serve scheduler —
    /// Queued jobs per priority class ([`PRIORITY_LABELS`] order).
    pub sched_queue_depth: [Gauge; 3],
    /// Jobs currently running.
    pub sched_running: Gauge,
    /// Jobs accepted by `submit`.
    pub sched_jobs_submitted: Counter,
    /// Submissions rejected by per-client quotas.
    pub sched_quota_rejections: Counter,
    /// Cooperative preemptions (running job returned to its queue).
    pub sched_preemptions: Counter,
    /// Retained results evicted under the byte cap.
    pub sched_evictions: Counter,
    /// Bytes released by result eviction.
    pub sched_evicted_bytes: Counter,
    /// Characterization cache hits at daemon start.
    pub cache_hits: Counter,
    /// Characterization cache misses (cold builds) at daemon start.
    pub cache_misses: Counter,
    /// Seconds jobs spent queued before (re)starting.
    pub job_wait_seconds: Histogram,
    /// Seconds jobs spent actually running (summed across preemption
    /// segments, observed once at the terminal state).
    pub job_run_seconds: Histogram,

    // — serve durability and connection robustness —
    /// Records appended (and fsync'd) to the durable job journal.
    pub journal_appends: Counter,
    /// Journal records replayed during restart recovery.
    pub journal_replayed: Counter,
    /// Jobs restored from the journal at daemon restart.
    pub recovered_jobs: Counter,
    /// Connections closed by the per-connection read/write deadline.
    pub conn_timeouts: Counter,
    /// Client-side retry attempts (reconnect + resubmit) performed by
    /// the retry policy.
    pub client_retries: Counter,
    /// Whether the daemon is draining (1) or accepting submits (0).
    pub draining: Gauge,
}

impl Metrics {
    fn new() -> Self {
        Metrics {
            trials: ShardedCounter::new(),
            iss_cycles: ShardedCounter::new(),
            iss_faults: std::array::from_fn(|_| ShardedCounter::new()),
            iss_watchdog_trips: ShardedCounter::new(),
            engine_steals: ShardedCounter::new(),
            engine_cells_finished: Counter::new(),
            engine_trials_saved: Counter::new(),
            engine_checkpoint_writes: Counter::new(),
            engine_worker_busy_us: ShardedCounter::new(),
            engine_worker_idle_us: ShardedCounter::new(),
            engine_worker_steal_us: ShardedCounter::new(),
            sched_queue_depth: std::array::from_fn(|_| Gauge::new()),
            sched_running: Gauge::new(),
            sched_jobs_submitted: Counter::new(),
            sched_quota_rejections: Counter::new(),
            sched_preemptions: Counter::new(),
            sched_evictions: Counter::new(),
            sched_evicted_bytes: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            job_wait_seconds: Histogram::new(&LATENCY_BOUNDS_S),
            job_run_seconds: Histogram::new(&LATENCY_BOUNDS_S),
            journal_appends: Counter::new(),
            journal_replayed: Counter::new(),
            recovered_jobs: Counter::new(),
            conn_timeouts: Counter::new(),
            client_retries: Counter::new(),
            draining: Gauge::new(),
        }
    }

    /// The per-model fault counter for [`FAULT_MODEL_LABELS`] index
    /// `model_index`.
    pub fn iss_faults_for(&self, model_index: usize) -> &ShardedCounter {
        &self.iss_faults[model_index]
    }

    /// A point-in-time snapshot of every family, in registration order.
    pub fn snapshot(&self) -> Snapshot {
        let counter = |name, help, value: u64| Family {
            name,
            help,
            kind: FamilyKind::Counter,
            samples: vec![Sample {
                labels: Vec::new(),
                value: SampleValue::Counter(value),
            }],
        };
        let gauge = |name, help, value: i64| Family {
            name,
            help,
            kind: FamilyKind::Gauge,
            samples: vec![Sample {
                labels: Vec::new(),
                value: SampleValue::Gauge(value),
            }],
        };
        let histogram = |name, help, snapshot: HistogramSnapshot| Family {
            name,
            help,
            kind: FamilyKind::Histogram,
            samples: vec![Sample {
                labels: Vec::new(),
                value: SampleValue::Histogram(snapshot),
            }],
        };
        let families = vec![
            counter(
                "sfi_trials_total",
                "Monte-Carlo trials simulated",
                self.trials.get(),
            ),
            counter(
                "sfi_iss_cycles_total",
                "Clock cycles simulated by the ISS",
                self.iss_cycles.get(),
            ),
            Family {
                name: "sfi_iss_injected_faults_total",
                help: "Bit faults injected, by fault model",
                kind: FamilyKind::Counter,
                samples: FAULT_MODEL_LABELS
                    .iter()
                    .zip(&self.iss_faults)
                    .map(|(label, counter)| Sample {
                        labels: vec![("model", label.to_string())],
                        value: SampleValue::Counter(counter.get()),
                    })
                    .collect(),
            },
            counter(
                "sfi_iss_watchdog_trips_total",
                "Runs aborted by the watchdog cycle limit",
                self.iss_watchdog_trips.get(),
            ),
            counter(
                "sfi_engine_steals_total",
                "Jobs stolen across campaign worker queues",
                self.engine_steals.get(),
            ),
            counter(
                "sfi_engine_cells_finished_total",
                "Campaign cells completed",
                self.engine_cells_finished.get(),
            ),
            counter(
                "sfi_engine_adaptive_trials_saved_total",
                "Trials skipped by the adaptive stopping rule",
                self.engine_trials_saved.get(),
            ),
            counter(
                "sfi_engine_checkpoint_writes_total",
                "Campaign checkpoint documents written",
                self.engine_checkpoint_writes.get(),
            ),
            counter(
                "sfi_engine_worker_busy_micros_total",
                "Microseconds campaign workers spent executing trials",
                self.engine_worker_busy_us.get(),
            ),
            counter(
                "sfi_engine_worker_idle_micros_total",
                "Microseconds campaign workers spent asleep with nothing to do",
                self.engine_worker_idle_us.get(),
            ),
            counter(
                "sfi_engine_worker_steal_micros_total",
                "Microseconds campaign workers spent looking for work",
                self.engine_worker_steal_us.get(),
            ),
            Family {
                name: "sfi_sched_queue_depth",
                help: "Queued jobs, by priority class",
                kind: FamilyKind::Gauge,
                samples: PRIORITY_LABELS
                    .iter()
                    .zip(&self.sched_queue_depth)
                    .map(|(label, gauge)| Sample {
                        labels: vec![("priority", label.to_string())],
                        value: SampleValue::Gauge(gauge.get()),
                    })
                    .collect(),
            },
            gauge(
                "sfi_sched_running_jobs",
                "Jobs currently running",
                self.sched_running.get(),
            ),
            counter(
                "sfi_sched_jobs_submitted_total",
                "Jobs accepted by submit",
                self.sched_jobs_submitted.get(),
            ),
            counter(
                "sfi_sched_quota_rejections_total",
                "Submissions rejected by per-client quotas",
                self.sched_quota_rejections.get(),
            ),
            counter(
                "sfi_sched_preemptions_total",
                "Cooperative job preemptions",
                self.sched_preemptions.get(),
            ),
            counter(
                "sfi_sched_evictions_total",
                "Retained results evicted under the byte cap",
                self.sched_evictions.get(),
            ),
            counter(
                "sfi_sched_evicted_bytes_total",
                "Bytes released by result eviction",
                self.sched_evicted_bytes.get(),
            ),
            counter(
                "sfi_characterization_cache_hits_total",
                "Characterization cache hits at daemon start",
                self.cache_hits.get(),
            ),
            counter(
                "sfi_characterization_cache_misses_total",
                "Characterization cache misses at daemon start",
                self.cache_misses.get(),
            ),
            counter(
                "sfi_events_dropped_total",
                "Events evicted from the bounded in-memory ring",
                events().dropped(),
            ),
            counter(
                "sfi_trace_records_dropped_total",
                "Trace records evicted from the bounded trace store",
                crate::span::trace().dropped(),
            ),
            histogram(
                "sfi_sched_job_wait_seconds",
                "Seconds jobs spent queued before (re)starting",
                self.job_wait_seconds.snapshot(),
            ),
            histogram(
                "sfi_sched_job_run_seconds",
                "Seconds jobs spent running, summed across preemption segments",
                self.job_run_seconds.snapshot(),
            ),
            counter(
                "sfi_journal_appends_total",
                "Records appended to the durable job journal",
                self.journal_appends.get(),
            ),
            counter(
                "sfi_journal_replayed_records_total",
                "Journal records replayed during restart recovery",
                self.journal_replayed.get(),
            ),
            counter(
                "sfi_recovered_jobs_total",
                "Jobs restored from the journal at daemon restart",
                self.recovered_jobs.get(),
            ),
            counter(
                "sfi_conn_timeouts_total",
                "Connections closed by the per-connection read/write deadline",
                self.conn_timeouts.get(),
            ),
            counter(
                "sfi_client_retries_total",
                "Client-side retry attempts performed by the retry policy",
                self.client_retries.get(),
            ),
            gauge(
                "sfi_draining",
                "Whether the daemon is draining (1) or accepting submits (0)",
                self.draining.get(),
            ),
        ];
        Snapshot { families }
    }
}

/// The process-wide registry singleton.
pub fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::new)
}

/// Default capacity of the process-wide event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// The process-wide event ring singleton.
pub fn events() -> &'static EventRing {
    static EVENTS: OnceLock<EventRing> = OnceLock::new();
    EVENTS.get_or_init(|| EventRing::new(DEFAULT_EVENT_CAPACITY))
}

/// What kind of samples a family carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonically increasing count.
    Counter,
    /// A value that can move both ways.
    Gauge,
    /// A fixed-bucket distribution.
    Histogram,
}

impl FamilyKind {
    /// The Prometheus/wire spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

/// One sample value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

/// One labelled sample of a family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label name/value pairs (empty for unlabelled families).
    pub labels: Vec<(&'static str, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// One metric family: a name, help text, kind and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// The family name, `sfi_*` by convention.
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// The family kind.
    pub kind: FamilyKind,
    /// The labelled samples.
    pub samples: Vec<Sample>,
}

/// A point-in-time view of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All families, registration order.
    pub families: Vec<Family>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_updates_and_covers_all_layers() {
        let m = metrics();
        let before = m.trials.get();
        m.trials.add(3);
        m.iss_faults_for(4).add(2);
        let snapshot = m.snapshot();

        let family = |name: &str| {
            snapshot
                .families
                .iter()
                .find(|f| f.name == name)
                .unwrap_or_else(|| panic!("family {name} missing"))
        };
        match &family("sfi_trials_total").samples[0].value {
            SampleValue::Counter(value) => assert!(*value >= before + 3),
            other => panic!("unexpected value {other:?}"),
        }
        let faults = family("sfi_iss_injected_faults_total");
        assert_eq!(faults.samples.len(), FAULT_MODEL_LABELS.len());
        assert_eq!(faults.samples[4].labels, vec![("model", "dta".to_string())]);

        // One family per layer must be present: ISS, engine, scheduler.
        for name in [
            "sfi_iss_cycles_total",
            "sfi_engine_steals_total",
            "sfi_engine_worker_busy_micros_total",
            "sfi_engine_worker_idle_micros_total",
            "sfi_engine_worker_steal_micros_total",
            "sfi_sched_queue_depth",
            "sfi_sched_job_wait_seconds",
            "sfi_events_dropped_total",
            "sfi_trace_records_dropped_total",
            "sfi_journal_appends_total",
            "sfi_journal_replayed_records_total",
            "sfi_recovered_jobs_total",
            "sfi_conn_timeouts_total",
            "sfi_client_retries_total",
            "sfi_draining",
        ] {
            let _ = family(name);
        }
    }

    #[test]
    fn the_singletons_are_stable() {
        assert!(std::ptr::eq(metrics(), metrics()));
        assert!(std::ptr::eq(events(), events()));
    }
}
